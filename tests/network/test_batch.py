"""Tests for the batch-cycle transport kernel (repro.network.batch).

The kernel's contract is *bit-identity* with the per-tuple reference path:
same delivery verdicts (same seeded RNG stream) and same accounting, with
all charges emitted as one array-level pipeline event.  Every test here
compares a batched execution against a freshly-seeded per-tuple run.
"""

import numpy as np
import pytest

from repro.metrics.pipeline import MetricsSink
from repro.network.batch import CycleBatcher, PreparedPaths, _segment_outcomes
from repro.network.links import lossy_links, perfect_links
from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_topology


def _sim(loss=0.0, seed=0, sinks=None):
    topology = grid_topology(num_nodes=25)
    links = perfect_links() if loss == 0.0 else lossy_links(loss, seed=seed)
    return NetworkSimulator(topology, link_model=links, sinks=sinks)


def _paths(simulator, count=None):
    """Every node's path to the base (the Naive shipping pattern)."""
    topology = simulator.topology
    paths = [
        topology.shortest_path(node_id, topology.base_id)
        for node_id in topology.node_ids
        if node_id != topology.base_id
    ]
    return paths[:count] if count is not None else paths


def _traffic_view(simulator):
    stats = simulator.stats
    return (
        dict(stats.transmitted),
        dict(stats.received),
        dict(stats.by_kind),
        stats.messages_sent,
        stats.messages_dropped,
    )


class TestSegmentOutcomes:
    def test_all_delivered(self):
        lens = np.array([2, 3, 1], dtype=np.int64)
        delivered, charged, starts = _segment_outcomes(
            lens, np.ones(6, dtype=bool)
        )
        assert delivered.all()
        assert np.array_equal(charged, lens)
        assert np.array_equal(starts, [0, 2, 5])

    def test_first_failure_truncates_charge(self):
        lens = np.array([3, 3], dtype=np.int64)
        hops = np.array([True, False, True, False, False, True])
        delivered, charged, _ = _segment_outcomes(lens, hops)
        assert not delivered.any()
        # charged up to and including the first failed hop
        assert np.array_equal(charged, [2, 1])

    def test_zero_length_segments_are_delivered(self):
        lens = np.array([0, 2, 0], dtype=np.int64)
        delivered, charged, _ = _segment_outcomes(
            lens, np.array([True, False])
        )
        assert delivered.tolist() == [True, False, True]
        assert charged.tolist() == [0, 2, 0]


class TestTransferMany:
    @pytest.mark.parametrize("loss", [0.0, 0.25])
    def test_bit_identical_to_looped_transfer(self, loss):
        batched = _sim(loss=loss, seed=7)
        reference = _sim(loss=loss, seed=7)
        paths = _paths(batched)
        out = batched.transfer_many(paths, 24, MessageKind.DATA)
        expected = np.array([
            reference.transfer(path, 24, MessageKind.DATA) for path in paths
        ])
        assert np.array_equal(out, expected)
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_prepared_paths_reusable_across_calls(self):
        batched = _sim(loss=0.3, seed=3)
        reference = _sim(loss=0.3, seed=3)
        paths = _paths(batched)
        prepared = batched.prepare_paths(paths)
        for _ in range(5):
            out = batched.transfer_many(prepared, 10, MessageKind.DATA)
            expected = np.array([
                reference.transfer(p, 10, MessageKind.DATA) for p in paths
            ])
            assert np.array_equal(out, expected)
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_single_node_paths_deliver_without_charges(self):
        simulator = _sim(loss=0.4, seed=2)
        base = simulator.topology.base_id
        out = simulator.transfer_many([[base], []], 16, MessageKind.DATA)
        assert out.tolist() == [True, True]
        assert simulator.stats.total() == 0.0
        # and no randomness was consumed
        fresh = lossy_links(0.4, seed=2)
        assert simulator.links.attempt_hop() == fresh.attempt_hop()

    def test_dead_node_falls_back_to_reference_path(self):
        batched = _sim(loss=0.0)
        reference = _sim(loss=0.0)
        paths = _paths(batched)
        victim = paths[0][0]
        for simulator in (batched, reference):
            simulator.topology.nodes[victim].fail()
        out = batched.transfer_many(paths, 8, MessageKind.DATA)
        expected = np.array([
            reference.transfer(p, 8, MessageKind.DATA) for p in paths
        ])
        assert np.array_equal(out, expected)
        assert not out[0]
        assert _traffic_view(batched) == _traffic_view(reference)


class TestCycleBatcher:
    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_ship_matches_reference_transfer(self, loss):
        batched = _sim(loss=loss, seed=5)
        reference = _sim(loss=loss, seed=5)
        batcher = CycleBatcher(batched)
        paths = _paths(batched)
        verdicts = [batcher.ship(p, 12, MessageKind.DATA) for p in paths]
        batcher.flush()
        expected = [
            reference.transfer(p, 12, MessageKind.DATA) for p in paths
        ]
        assert verdicts == expected
        assert _traffic_view(batched) == _traffic_view(reference)

    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_ship_many_matches_per_path_ship(self, loss):
        many = _sim(loss=loss, seed=9)
        single = _sim(loss=loss, seed=9)
        paths = _paths(many)
        batcher_many = CycleBatcher(many)
        out = batcher_many.ship_many(paths, 20, MessageKind.DATA)
        batcher_many.flush()
        batcher_single = CycleBatcher(single)
        expected = [
            batcher_single.ship(p, 20, MessageKind.DATA) for p in paths
        ]
        batcher_single.flush()
        assert out.tolist() == expected
        assert _traffic_view(many) == _traffic_view(single)

    def test_mixed_kinds_and_sizes_in_one_flush(self):
        batched = _sim(loss=0.2, seed=13)
        reference = _sim(loss=0.2, seed=13)
        paths = _paths(batched, count=8)
        batcher = CycleBatcher(batched)
        plan = [
            (paths[0], 24, MessageKind.DATA),
            (paths[1], 6, MessageKind.CONTROL),
            (paths[2], 24, MessageKind.DATA),
            (paths[3], 40, MessageKind.RESULT),
            (paths[4], 6, MessageKind.CONTROL),
        ]
        verdicts = [batcher.ship(p, s, k) for p, s, k in plan]
        batcher.flush()
        expected = [reference.transfer(p, s, k) for p, s, k in plan]
        assert verdicts == expected
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_flush_emits_one_pipeline_event(self):
        events = []

        class Counter(MetricsSink):
            name = "counter"

            def charge_paths_batch(self, batch):
                events.append(batch)

        simulator = _sim(loss=0.0, sinks=[Counter()])
        batcher = CycleBatcher(simulator)
        for path in _paths(simulator):
            batcher.ship(path, 10, MessageKind.DATA)
        batcher.flush()
        assert len(events) == 1
        batcher.flush()  # empty: nothing further
        assert len(events) == 1


class TestShipEdges:
    """Batched multicast-edge shipping (the innet tree-traffic classes)."""

    @staticmethod
    def _edges(simulator, count=None):
        """Tree-shaped traffic: every path decomposed into its 1-hop edges."""
        edges = []
        for path in _paths(simulator, count=count):
            edges.extend(zip(path, path[1:]))
        senders = np.array([s for s, _ in edges], dtype=np.int64)
        receivers = np.array([r for _, r in edges], dtype=np.int64)
        return senders, receivers

    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_matches_per_edge_reference(self, loss):
        batched = _sim(loss=loss, seed=11)
        reference = _sim(loss=loss, seed=11)
        senders, receivers = self._edges(batched)
        batcher = CycleBatcher(batched)
        out = batcher.ship_edges(senders, receivers, 14, MessageKind.DATA)
        batcher.flush()
        expected = [
            reference.transfer((int(s), int(r)), 14, MessageKind.DATA)
            for s, r in zip(senders, receivers)
        ]
        assert out.tolist() == expected
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_lossy_interleaved_with_scalar_ships_keeps_rng_stream(self):
        """Verdict draws happen at ship time in call order, so mixing edge
        blocks with scalar path ships must consume the seeded stream exactly
        like the equivalent per-tuple transfer sequence."""
        batched = _sim(loss=0.3, seed=17)
        reference = _sim(loss=0.3, seed=17)
        paths = _paths(batched, count=6)
        senders, receivers = self._edges(batched, count=4)
        batcher = CycleBatcher(batched)
        verdicts = [batcher.ship(paths[0], 8, MessageKind.DATA)]
        edge_out = batcher.ship_edges(senders, receivers, 8, MessageKind.DATA)
        verdicts.append(batcher.ship(paths[5], 8, MessageKind.RESULT))
        batcher.flush()
        expected = [reference.transfer(paths[0], 8, MessageKind.DATA)]
        edge_expected = [
            reference.transfer((int(s), int(r)), 8, MessageKind.DATA)
            for s, r in zip(senders, receivers)
        ]
        expected.append(reference.transfer(paths[5], 8, MessageKind.RESULT))
        assert verdicts == expected
        assert edge_out.tolist() == edge_expected
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_replay_reproduces_reference_calls_for_edge_blocks(self):
        """Sinks without a batch handler see per-edge charges in order."""
        batched_sink = TestUnrollAdapter.Recorder()
        reference_sink = TestUnrollAdapter.Recorder()
        batched = _sim(loss=0.35, seed=23, sinks=[batched_sink])
        reference = _sim(loss=0.35, seed=23, sinks=[reference_sink])
        senders, receivers = self._edges(batched, count=8)
        batcher = CycleBatcher(batched)
        batcher.ship_edges(senders, receivers, 18, MessageKind.DATA)
        batcher.flush()
        for s, r in zip(senders, receivers):
            reference.transfer((int(s), int(r)), 18, MessageKind.DATA)
        assert batched_sink.calls == reference_sink.calls
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_empty_edge_call_ships_nothing(self):
        simulator = _sim(loss=0.4, seed=6)
        batcher = CycleBatcher(simulator)
        out = batcher.ship_edges(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            10, MessageKind.DATA,
        )
        batcher.flush()
        assert out.size == 0
        assert simulator.stats.total() == 0.0
        # and no randomness was consumed
        fresh = lossy_links(0.4, seed=6)
        assert simulator.links.attempt_hop() == fresh.attempt_hop()


class TestShiplessCycle:
    """A cycle that ships nothing must emit no pipeline event at all."""

    class Counter(MetricsSink):
        name = "counter"

        def __init__(self):
            self.events = []

        def charge_paths_batch(self, batch):
            self.events.append(batch)

    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_zero_shipment_flush_emits_no_event(self, loss):
        """Regression: all-zero-hop ship_many / empty ship_edges calls must
        not leave an empty group behind -- a shipless cycle flushes to
        nothing, exactly like the per-tuple reference which never calls the
        pipeline."""
        counter = self.Counter()
        simulator = _sim(loss=loss, seed=8, sinks=[counter])
        base = simulator.topology.base_id
        batcher = CycleBatcher(simulator)
        out = batcher.ship_many([[base], []], 10, MessageKind.DATA)
        batcher.ship_edges(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            10, MessageKind.DATA,
        )
        batcher.flush()
        assert out.tolist() == [True, True]
        assert counter.events == []
        assert simulator.stats.total() == 0.0
        if loss:
            # zero-hop segments consume no randomness either
            fresh = lossy_links(loss, seed=8)
            assert simulator.links.attempt_hop() == fresh.attempt_hop()


class TestUnrollAdapter:
    """Sinks without a native batch handler observe replayed charges."""

    class Recorder(MetricsSink):
        name = "recorder"

        def __init__(self):
            self.calls = []

        def charge_path(self, path, size_bytes, kind,
                        attempts=None, num_hops=None):
            self.calls.append((
                tuple(path), size_bytes, kind,
                tuple(attempts.tolist()) if attempts is not None else None,
                num_hops,
            ))

        def charge_drop(self, queue_drop=False):
            self.calls.append(("drop", queue_drop))

    @pytest.mark.parametrize("loss", [0.0, 0.35])
    def test_replay_reproduces_reference_call_sequence(self, loss):
        batched_sink = self.Recorder()
        reference_sink = self.Recorder()
        batched = _sim(loss=loss, seed=21, sinks=[batched_sink])
        reference = _sim(loss=loss, seed=21, sinks=[reference_sink])
        paths = _paths(batched)
        batcher = CycleBatcher(batched)
        for path in paths:
            batcher.ship(path, 18, MessageKind.DATA)
        batcher.flush()
        for path in paths:
            reference.transfer(path, 18, MessageKind.DATA)
        assert batched_sink.calls == reference_sink.calls
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_replay_covers_prepared_transfer_many(self):
        batched_sink = self.Recorder()
        reference_sink = self.Recorder()
        batched = _sim(loss=0.35, seed=4, sinks=[batched_sink])
        reference = _sim(loss=0.35, seed=4, sinks=[reference_sink])
        paths = _paths(batched)
        batched.transfer_many(paths, 18, MessageKind.DATA)
        for path in paths:
            reference.transfer(path, 18, MessageKind.DATA)
        assert batched_sink.calls == reference_sink.calls


class TestPreparedPaths:
    def test_counts_and_flattening(self):
        prepared = PreparedPaths([[1, 2, 3], [4], [2, 3]], minlength=6)
        assert prepared.n == 3
        assert prepared.active.tolist() == [0, 2]
        assert prepared.lens.tolist() == [2, 1]
        assert prepared.senders.tolist() == [1, 2, 2]
        assert prepared.receivers.tolist() == [2, 3, 3]
        assert prepared.total_hops == 3
        assert prepared.sender_counts.tolist() == [0, 1, 2, 0, 0, 0]
        assert prepared.receiver_counts.tolist() == [0, 0, 1, 2, 0, 0]
