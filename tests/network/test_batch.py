"""Tests for the batch-cycle transport kernel (repro.network.batch).

The kernel's contract is *bit-identity* with the per-tuple reference path:
same delivery verdicts (same seeded RNG stream) and same accounting, with
all charges emitted as one array-level pipeline event.  Every test here
compares a batched execution against a freshly-seeded per-tuple run.
"""

import numpy as np
import pytest

from repro.metrics.pipeline import MetricsSink
from repro.network.batch import CycleBatcher, PreparedPaths, _segment_outcomes
from repro.network.links import lossy_links, perfect_links
from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_topology


def _sim(loss=0.0, seed=0, sinks=None):
    topology = grid_topology(num_nodes=25)
    links = perfect_links() if loss == 0.0 else lossy_links(loss, seed=seed)
    return NetworkSimulator(topology, link_model=links, sinks=sinks)


def _paths(simulator, count=None):
    """Every node's path to the base (the Naive shipping pattern)."""
    topology = simulator.topology
    paths = [
        topology.shortest_path(node_id, topology.base_id)
        for node_id in topology.node_ids
        if node_id != topology.base_id
    ]
    return paths[:count] if count is not None else paths


def _traffic_view(simulator):
    stats = simulator.stats
    return (
        dict(stats.transmitted),
        dict(stats.received),
        dict(stats.by_kind),
        stats.messages_sent,
        stats.messages_dropped,
    )


class TestSegmentOutcomes:
    def test_all_delivered(self):
        lens = np.array([2, 3, 1], dtype=np.int64)
        delivered, charged, starts = _segment_outcomes(
            lens, np.ones(6, dtype=bool)
        )
        assert delivered.all()
        assert np.array_equal(charged, lens)
        assert np.array_equal(starts, [0, 2, 5])

    def test_first_failure_truncates_charge(self):
        lens = np.array([3, 3], dtype=np.int64)
        hops = np.array([True, False, True, False, False, True])
        delivered, charged, _ = _segment_outcomes(lens, hops)
        assert not delivered.any()
        # charged up to and including the first failed hop
        assert np.array_equal(charged, [2, 1])

    def test_zero_length_segments_are_delivered(self):
        lens = np.array([0, 2, 0], dtype=np.int64)
        delivered, charged, _ = _segment_outcomes(
            lens, np.array([True, False])
        )
        assert delivered.tolist() == [True, False, True]
        assert charged.tolist() == [0, 2, 0]


class TestTransferMany:
    @pytest.mark.parametrize("loss", [0.0, 0.25])
    def test_bit_identical_to_looped_transfer(self, loss):
        batched = _sim(loss=loss, seed=7)
        reference = _sim(loss=loss, seed=7)
        paths = _paths(batched)
        out = batched.transfer_many(paths, 24, MessageKind.DATA)
        expected = np.array([
            reference.transfer(path, 24, MessageKind.DATA) for path in paths
        ])
        assert np.array_equal(out, expected)
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_prepared_paths_reusable_across_calls(self):
        batched = _sim(loss=0.3, seed=3)
        reference = _sim(loss=0.3, seed=3)
        paths = _paths(batched)
        prepared = batched.prepare_paths(paths)
        for _ in range(5):
            out = batched.transfer_many(prepared, 10, MessageKind.DATA)
            expected = np.array([
                reference.transfer(p, 10, MessageKind.DATA) for p in paths
            ])
            assert np.array_equal(out, expected)
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_single_node_paths_deliver_without_charges(self):
        simulator = _sim(loss=0.4, seed=2)
        base = simulator.topology.base_id
        out = simulator.transfer_many([[base], []], 16, MessageKind.DATA)
        assert out.tolist() == [True, True]
        assert simulator.stats.total() == 0.0
        # and no randomness was consumed
        fresh = lossy_links(0.4, seed=2)
        assert simulator.links.attempt_hop() == fresh.attempt_hop()

    def test_dead_node_falls_back_to_reference_path(self):
        batched = _sim(loss=0.0)
        reference = _sim(loss=0.0)
        paths = _paths(batched)
        victim = paths[0][0]
        for simulator in (batched, reference):
            simulator.topology.nodes[victim].fail()
        out = batched.transfer_many(paths, 8, MessageKind.DATA)
        expected = np.array([
            reference.transfer(p, 8, MessageKind.DATA) for p in paths
        ])
        assert np.array_equal(out, expected)
        assert not out[0]
        assert _traffic_view(batched) == _traffic_view(reference)


class TestCycleBatcher:
    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_ship_matches_reference_transfer(self, loss):
        batched = _sim(loss=loss, seed=5)
        reference = _sim(loss=loss, seed=5)
        batcher = CycleBatcher(batched)
        paths = _paths(batched)
        verdicts = [batcher.ship(p, 12, MessageKind.DATA) for p in paths]
        batcher.flush()
        expected = [
            reference.transfer(p, 12, MessageKind.DATA) for p in paths
        ]
        assert verdicts == expected
        assert _traffic_view(batched) == _traffic_view(reference)

    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_ship_many_matches_per_path_ship(self, loss):
        many = _sim(loss=loss, seed=9)
        single = _sim(loss=loss, seed=9)
        paths = _paths(many)
        batcher_many = CycleBatcher(many)
        out = batcher_many.ship_many(paths, 20, MessageKind.DATA)
        batcher_many.flush()
        batcher_single = CycleBatcher(single)
        expected = [
            batcher_single.ship(p, 20, MessageKind.DATA) for p in paths
        ]
        batcher_single.flush()
        assert out.tolist() == expected
        assert _traffic_view(many) == _traffic_view(single)

    def test_mixed_kinds_and_sizes_in_one_flush(self):
        batched = _sim(loss=0.2, seed=13)
        reference = _sim(loss=0.2, seed=13)
        paths = _paths(batched, count=8)
        batcher = CycleBatcher(batched)
        plan = [
            (paths[0], 24, MessageKind.DATA),
            (paths[1], 6, MessageKind.CONTROL),
            (paths[2], 24, MessageKind.DATA),
            (paths[3], 40, MessageKind.RESULT),
            (paths[4], 6, MessageKind.CONTROL),
        ]
        verdicts = [batcher.ship(p, s, k) for p, s, k in plan]
        batcher.flush()
        expected = [reference.transfer(p, s, k) for p, s, k in plan]
        assert verdicts == expected
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_flush_emits_one_pipeline_event(self):
        events = []

        class Counter(MetricsSink):
            name = "counter"

            def charge_paths_batch(self, batch):
                events.append(batch)

        simulator = _sim(loss=0.0, sinks=[Counter()])
        batcher = CycleBatcher(simulator)
        for path in _paths(simulator):
            batcher.ship(path, 10, MessageKind.DATA)
        batcher.flush()
        assert len(events) == 1
        batcher.flush()  # empty: nothing further
        assert len(events) == 1


class TestUnrollAdapter:
    """Sinks without a native batch handler observe replayed charges."""

    class Recorder(MetricsSink):
        name = "recorder"

        def __init__(self):
            self.calls = []

        def charge_path(self, path, size_bytes, kind,
                        attempts=None, num_hops=None):
            self.calls.append((
                tuple(path), size_bytes, kind,
                tuple(attempts.tolist()) if attempts is not None else None,
                num_hops,
            ))

        def charge_drop(self, queue_drop=False):
            self.calls.append(("drop", queue_drop))

    @pytest.mark.parametrize("loss", [0.0, 0.35])
    def test_replay_reproduces_reference_call_sequence(self, loss):
        batched_sink = self.Recorder()
        reference_sink = self.Recorder()
        batched = _sim(loss=loss, seed=21, sinks=[batched_sink])
        reference = _sim(loss=loss, seed=21, sinks=[reference_sink])
        paths = _paths(batched)
        batcher = CycleBatcher(batched)
        for path in paths:
            batcher.ship(path, 18, MessageKind.DATA)
        batcher.flush()
        for path in paths:
            reference.transfer(path, 18, MessageKind.DATA)
        assert batched_sink.calls == reference_sink.calls
        assert _traffic_view(batched) == _traffic_view(reference)

    def test_replay_covers_prepared_transfer_many(self):
        batched_sink = self.Recorder()
        reference_sink = self.Recorder()
        batched = _sim(loss=0.35, seed=4, sinks=[batched_sink])
        reference = _sim(loss=0.35, seed=4, sinks=[reference_sink])
        paths = _paths(batched)
        batched.transfer_many(paths, 18, MessageKind.DATA)
        for path in paths:
            reference.transfer(path, 18, MessageKind.DATA)
        assert batched_sink.calls == reference_sink.calls


class TestPreparedPaths:
    def test_counts_and_flattening(self):
        prepared = PreparedPaths([[1, 2, 3], [4], [2, 3]], minlength=6)
        assert prepared.n == 3
        assert prepared.active.tolist() == [0, 2]
        assert prepared.lens.tolist() == [2, 1]
        assert prepared.senders.tolist() == [1, 2, 2]
        assert prepared.receivers.tolist() == [2, 3, 3]
        assert prepared.total_hops == 3
        assert prepared.sender_counts.tolist() == [0, 1, 2, 0, 0, 0]
        assert prepared.receiver_counts.tolist() == [0, 0, 1, 2, 0, 0]
