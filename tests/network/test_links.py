"""Tests for the link model."""

import pytest

from repro.network import LinkModel
from repro.network.links import lossy_links, perfect_links


class TestLinkModel:
    def test_perfect_links_always_deliver(self):
        links = perfect_links()
        for _ in range(100):
            delivered, attempts = links.attempt_hop()
            assert delivered
            assert attempts == 1
        assert links.expected_attempts() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss_probability=1.0)
        with pytest.raises(ValueError):
            LinkModel(loss_probability=-0.1)
        with pytest.raises(ValueError):
            LinkModel(loss_probability=0.1, max_retransmissions=-1)

    def test_lossy_links_retry_and_charge(self):
        links = lossy_links(0.5, seed=42)
        outcomes = [links.attempt_hop() for _ in range(2000)]
        total_attempts = sum(a for _, a in outcomes)
        successes = sum(1 for ok, _ in outcomes if ok)
        # With 3 retransmissions at 50% loss, ~93.75% of hops succeed.
        assert successes / len(outcomes) == pytest.approx(0.9375, abs=0.03)
        assert total_attempts > len(outcomes)

    def test_expected_attempts_matches_simulation(self):
        links = lossy_links(0.3, seed=7)
        outcomes = [links.attempt_hop() for _ in range(5000)]
        simulated = sum(a for _, a in outcomes) / len(outcomes)
        assert simulated == pytest.approx(links.expected_attempts(), rel=0.05)

    def test_reseed_reproduces_sequence(self):
        links = lossy_links(0.4, seed=3)
        first = [links.attempt_hop() for _ in range(50)]
        links.reseed(3)
        second = [links.attempt_hop() for _ in range(50)]
        assert first == second

    def test_zero_retransmissions(self):
        links = LinkModel(loss_probability=0.5, max_retransmissions=0, seed=1)
        delivered, attempts = links.attempt_hop()
        assert attempts == 1
        assert links.expected_attempts() == pytest.approx(1.0)
