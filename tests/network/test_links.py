"""Tests for the link model."""

import numpy as np
import pytest

from repro.network import LinkModel
from repro.network.links import lossy_links, perfect_links


class TestLinkModel:
    def test_perfect_links_always_deliver(self):
        links = perfect_links()
        for _ in range(100):
            delivered, attempts = links.attempt_hop()
            assert delivered
            assert attempts == 1
        assert links.expected_attempts() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss_probability=1.0)
        with pytest.raises(ValueError):
            LinkModel(loss_probability=-0.1)
        with pytest.raises(ValueError):
            LinkModel(loss_probability=0.1, max_retransmissions=-1)

    def test_lossy_links_retry_and_charge(self):
        links = lossy_links(0.5, seed=42)
        outcomes = [links.attempt_hop() for _ in range(2000)]
        total_attempts = sum(a for _, a in outcomes)
        successes = sum(1 for ok, _ in outcomes if ok)
        # With 3 retransmissions at 50% loss, ~93.75% of hops succeed.
        assert successes / len(outcomes) == pytest.approx(0.9375, abs=0.03)
        assert total_attempts > len(outcomes)

    def test_expected_attempts_matches_simulation(self):
        links = lossy_links(0.3, seed=7)
        outcomes = [links.attempt_hop() for _ in range(5000)]
        simulated = sum(a for _, a in outcomes) / len(outcomes)
        assert simulated == pytest.approx(links.expected_attempts(), rel=0.05)

    def test_reseed_reproduces_sequence(self):
        links = lossy_links(0.4, seed=3)
        first = [links.attempt_hop() for _ in range(50)]
        links.reseed(3)
        second = [links.attempt_hop() for _ in range(50)]
        assert first == second

    def test_zero_retransmissions(self):
        links = LinkModel(loss_probability=0.5, max_retransmissions=0, seed=1)
        delivered, attempts = links.attempt_hop()
        assert attempts == 1
        assert links.expected_attempts() == pytest.approx(1.0)


class TestAttemptHopsBatch:
    """The batched multi-path draw behind the batch-cycle kernel."""

    def test_exact_stream_equivalence_to_looped_attempt_hops(self):
        """One batched draw consumes the seeded stream exactly like the
        per-path ``attempt_hops`` calls it replaces -- the bit-identity
        guarantee the batch kernel rests on."""
        lengths = [3, 1, 7, 2, 5, 4, 1, 6]
        for loss, seed in [(0.2, 0), (0.5, 11), (0.05, 42)]:
            looped = lossy_links(loss, seed=seed)
            loop_delivered = []
            loop_attempts = []
            for length in lengths:
                delivered, attempts = looped.attempt_hops(length)
                loop_delivered.append(delivered)
                loop_attempts.append(attempts)
            batched = lossy_links(loss, seed=seed)
            b_delivered, b_attempts = batched.attempt_hops_batch(lengths)
            assert np.array_equal(np.concatenate(loop_delivered), b_delivered)
            assert np.array_equal(np.concatenate(loop_attempts), b_attempts)
            # and the two generators are left in the same state
            assert looped.attempt_hop() == batched.attempt_hop()

    def test_distribution_matches_analytic_mean(self):
        loss = 0.3
        links = lossy_links(loss, seed=5)
        delivered, attempts = links.attempt_hops_batch([1000] * 100)
        limit = links.max_retransmissions + 1
        assert delivered.mean() == pytest.approx(
            1.0 - loss ** limit, abs=0.01
        )
        assert attempts.mean() == pytest.approx(
            links.expected_attempts(), rel=0.02
        )
        assert int(attempts.max()) <= limit
        # every failed hop burned the full retransmission budget
        assert (attempts[~delivered] == limit).all()

    def test_perfect_links_draw_nothing(self):
        links = perfect_links()
        delivered, attempts = links.attempt_hops_batch([2, 0, 3])
        assert delivered.all() and delivered.size == 5
        assert (attempts == 1).all()

    def test_zero_length_segments_consume_no_randomness(self):
        first = lossy_links(0.4, seed=9)
        with_zeros = first.attempt_hops_batch([0, 3, 0, 2, 0])
        second = lossy_links(0.4, seed=9)
        without_zeros = second.attempt_hops_batch([3, 2])
        assert np.array_equal(with_zeros[0], without_zeros[0])
        assert np.array_equal(with_zeros[1], without_zeros[1])
        assert first.attempt_hop() == second.attempt_hop()

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            lossy_links(0.2, seed=0).attempt_hops_batch([2, -1])
