"""Tests for the cycle-driven network simulator."""

import pytest

from repro.network import (
    LinkModel,
    Message,
    MessageKind,
    NetworkSimulator,
    SensorNode,
    Topology,
    TrafficAccounting,
)


def chain_topology(length=5):
    nodes = {i: SensorNode(node_id=i, position=(float(i), 0.0)) for i in range(length)}
    adjacency = {i: set() for i in range(length)}
    for i in range(length - 1):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    return Topology(nodes=nodes, adjacency=adjacency, base_id=0, radio_range=1.5)


class TestInstantTransfer:
    def test_transfer_charges_each_hop(self):
        sim = NetworkSimulator(chain_topology())
        ok = sim.transfer([0, 1, 2, 3], size_bytes=10, kind=MessageKind.DATA)
        assert ok
        assert sim.stats.total() == 30.0  # three transmissions of 10 bytes
        assert sim.stats.transmitted[0] == 10.0
        assert sim.stats.transmitted[3] == 0.0
        assert sim.stats.received[3] == 10.0

    def test_single_node_path_costs_nothing(self):
        sim = NetworkSimulator(chain_topology())
        assert sim.transfer([2], size_bytes=10)
        assert sim.stats.total() == 0.0

    def test_empty_path_rejected(self):
        sim = NetworkSimulator(chain_topology())
        with pytest.raises(ValueError):
            sim.transfer([], size_bytes=10)

    def test_transfer_through_dead_node_fails(self):
        topo = chain_topology()
        topo.nodes[2].fail()
        sim = NetworkSimulator(topo)
        ok = sim.transfer([0, 1, 2, 3], size_bytes=10)
        assert not ok
        assert sim.stats.messages_dropped == 1

    def test_transfer_delivery_callback(self):
        sim = NetworkSimulator(chain_topology())
        seen = []
        sim.register_handler(3, lambda node, msg: seen.append((node, msg.payload["v"])))
        sim.transfer([0, 1, 2, 3], size_bytes=10, deliver=True, payload={"v": 42})
        assert seen == [(3, 42)]

    def test_message_accounting_mode(self):
        sim = NetworkSimulator(
            chain_topology(), accounting=TrafficAccounting.MESSAGES
        )
        sim.transfer([0, 1, 2], size_bytes=999)
        assert sim.stats.total() == 2.0

    def test_queue_capacity_enforced_per_sampling_cycle(self):
        sim = NetworkSimulator(chain_topology(), queue_capacity=2)
        # Node 1 forwards (it is an intermediate hop); only 2 messages admitted.
        results = [sim.transfer([0, 1, 2], size_bytes=10) for _ in range(4)]
        assert results == [True, True, False, False]
        assert sim.stats.queue_drops == 2
        sim.advance_sampling_cycle()
        assert sim.transfer([0, 1, 2], size_bytes=10)

    def test_lossy_transfer_drops(self):
        links = LinkModel(loss_probability=0.9, max_retransmissions=0, seed=1)
        sim = NetworkSimulator(chain_topology(), link_model=links)
        outcomes = [sim.transfer([0, 1, 2, 3, 4], size_bytes=10) for _ in range(50)]
        assert not all(outcomes)
        assert sim.stats.messages_dropped > 0


class TestBroadcastAndFlood:
    def test_broadcast_charges_once(self):
        sim = NetworkSimulator(chain_topology())
        heard = sim.broadcast(1, size_bytes=8)
        assert heard == [0, 2]
        assert sim.stats.transmitted[1] == 8.0

    def test_broadcast_from_dead_node(self):
        topo = chain_topology()
        topo.nodes[1].fail()
        sim = NetworkSimulator(topo)
        assert sim.broadcast(1, size_bytes=8) == []

    def test_flood_reaches_every_node_once(self):
        sim = NetworkSimulator(chain_topology(length=6))
        transmissions = sim.flood(0, size_bytes=5)
        assert transmissions == 6
        assert sim.stats.total() == 30.0


class TestCycleAccurateTransport:
    def test_send_requires_path(self):
        sim = NetworkSimulator(chain_topology())
        with pytest.raises(ValueError):
            sim.send(Message(kind=MessageKind.DATA, source=0, destination=3, size_bytes=5))

    def test_message_advances_one_hop_per_cycle(self):
        sim = NetworkSimulator(chain_topology())
        delivered = []
        sim.register_handler(3, lambda node, msg: delivered.append(msg))
        msg = Message(
            kind=MessageKind.DATA, source=0, destination=3, size_bytes=5,
            path=[0, 1, 2, 3],
        )
        sim.send(msg)
        sim.run_transmission_cycles(2)
        assert not delivered
        sim.run_transmission_cycles(1)
        assert len(delivered) == 1
        assert delivered[0].latency_cycles == 3

    def test_run_until_idle(self):
        sim = NetworkSimulator(chain_topology())
        msg = Message(
            kind=MessageKind.DATA, source=0, destination=4, size_bytes=5,
            path=[0, 1, 2, 3, 4],
        )
        sim.send(msg)
        cycles = sim.run_until_idle()
        assert cycles == 4
        assert sim.in_flight_count == 0
        assert len(sim.delivered) == 1

    def test_self_delivery_is_immediate(self):
        sim = NetworkSimulator(chain_topology())
        seen = []
        sim.register_handler(2, lambda node, msg: seen.append(node))
        sim.send(Message(kind=MessageKind.DATA, source=2, destination=2, size_bytes=5, path=[2]))
        assert seen == [2]

    def test_failure_mid_route_drops_message(self):
        topo = chain_topology()
        sim = NetworkSimulator(topo)
        msg = Message(
            kind=MessageKind.DATA, source=0, destination=4, size_bytes=5,
            path=[0, 1, 2, 3, 4],
        )
        sim.send(msg)
        sim.run_transmission_cycles(1)
        topo.nodes[2].fail()
        sim.run_transmission_cycles(5)
        assert len(sim.dropped) == 1
        assert sim.dropped[0].dropped

    def test_default_handler_used_when_no_specific(self):
        sim = NetworkSimulator(chain_topology())
        seen = []
        sim.register_default_handler(lambda node, msg: seen.append(node))
        sim.send(Message(kind=MessageKind.DATA, source=0, destination=1, size_bytes=5, path=[0, 1]))
        sim.run_until_idle()
        assert seen == [1]

    def test_average_latency_filtering(self):
        sim = NetworkSimulator(chain_topology())
        sim.send(Message(kind=MessageKind.DATA, source=0, destination=2, size_bytes=5, path=[0, 1, 2]))
        sim.send(Message(kind=MessageKind.RESULT, source=0, destination=1, size_bytes=5, path=[0, 1]))
        sim.run_until_idle()
        assert sim.average_delivery_latency() == pytest.approx(1.5)
        assert sim.average_delivery_latency(kinds=[MessageKind.RESULT]) == pytest.approx(1.0)
        assert sim.average_delivery_latency(kinds=[MessageKind.CONTROL]) == 0.0

    def test_register_handler_unknown_node(self):
        sim = NetworkSimulator(chain_topology())
        with pytest.raises(KeyError):
            sim.register_handler(99, lambda n, m: None)


class TestRunUntilIdleTruncation:
    def _send_long(self, sim):
        sim.send(Message(
            kind=MessageKind.DATA, source=0, destination=4, size_bytes=5,
            path=[0, 1, 2, 3, 4],
        ))

    def test_truncation_warns_and_flags(self):
        sim = NetworkSimulator(chain_topology())
        self._send_long(sim)
        with pytest.warns(RuntimeWarning, match="still in flight"):
            cycles = sim.run_until_idle(max_cycles=2)
        assert cycles == 2
        assert sim.last_run_truncated
        assert sim.in_flight_count == 1

    def test_clean_drain_clears_the_flag(self):
        sim = NetworkSimulator(chain_topology())
        self._send_long(sim)
        with pytest.warns(RuntimeWarning):
            sim.run_until_idle(max_cycles=1)
        sim.run_until_idle()
        assert not sim.last_run_truncated
        assert sim.in_flight_count == 0


class TestBoundedDeliveredList:
    def test_delivered_list_is_bounded(self):
        sim = NetworkSimulator(chain_topology(), delivered_limit=3)
        for _ in range(5):
            sim.send(Message(kind=MessageKind.DATA, source=0, destination=1,
                             size_bytes=5, path=[0, 1]))
            sim.run_until_idle()
        assert len(sim.delivered) == 3

    def test_latency_stays_exact_beyond_the_bound(self):
        """The streaming sink covers every delivery, not the retained tail.

        Equivalence check against the old exact list mean: deliveries with
        latencies 1..5 average 3.0 even though only the last 2 messages are
        retained.
        """
        sim = NetworkSimulator(chain_topology(length=6), delivered_limit=2)
        for hops in range(1, 6):
            sim.send(Message(kind=MessageKind.DATA, source=0, destination=hops,
                             size_bytes=5, path=list(range(hops + 1))))
            sim.run_until_idle()
        assert len(sim.delivered) == 2
        assert sim.latency.count == 5
        # old implementation: sum(1..5) / 5
        assert sim.average_delivery_latency() == pytest.approx(3.0)
        assert sim.average_delivery_latency([MessageKind.DATA]) == pytest.approx(3.0)
        assert sim.average_delivery_latency([MessageKind.RESULT]) == 0.0

    def test_instant_transfers_count_as_zero_latency(self):
        sim = NetworkSimulator(chain_topology())
        sim.transfer([0, 1, 2], 10, deliver=True)
        assert sim.latency.count == 1
        assert sim.average_delivery_latency() == 0.0


class TestClock:
    def test_clock_rollover(self):
        sim = NetworkSimulator(chain_topology(), transmission_cycles_per_sample=3)
        sim.run_transmission_cycles(7)
        assert sim.clock.sampling_cycle == 2
        assert sim.clock.transmission_cycle == 1
        assert sim.clock.total_transmission_cycles == 7

    def test_advance_sampling_resets_transmission(self):
        sim = NetworkSimulator(chain_topology(), transmission_cycles_per_sample=10)
        sim.run_transmission_cycles(4)
        sim.advance_sampling_cycle()
        assert sim.clock.sampling_cycle == 1
        assert sim.clock.transmission_cycle == 0
