"""Tests for the sensor node model."""

import pytest

from repro.network import SensorNode
from repro.network.node import base_station


class TestSensorNode:
    def test_defaults_include_id_and_pos(self):
        node = SensorNode(node_id=3, position=(1.0, 2.0))
        assert node.get_attribute("id") == 3
        assert node.get_attribute("pos") == (1.0, 2.0)
        assert node.alive

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            SensorNode(node_id=-1, position=(0, 0))

    def test_static_shadows_dynamic(self):
        node = SensorNode(node_id=1, position=(0, 0))
        node.set_dynamic("u", 10)
        node.set_static("u", 99)
        assert node.get_attribute("u") == 99
        assert node.attributes()["u"] == 99

    def test_missing_attribute_raises(self):
        node = SensorNode(node_id=1, position=(0, 0))
        with pytest.raises(KeyError):
            node.get_attribute("nope")
        assert not node.has_attribute("nope")

    def test_dynamic_attribute_roundtrip(self):
        node = SensorNode(node_id=1, position=(0, 0))
        node.set_dynamic("temp", 21.5)
        assert node.has_attribute("temp")
        assert node.get_attribute("temp") == 21.5

    def test_fail_and_recover(self):
        node = SensorNode(node_id=1, position=(0, 0))
        node.fail()
        assert not node.alive
        node.recover()
        assert node.alive

    def test_distance(self):
        a = SensorNode(node_id=1, position=(0.0, 0.0))
        b = SensorNode(node_id=2, position=(3.0, 4.0))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_move_updates_pos_attribute(self):
        node = SensorNode(node_id=1, position=(0.0, 0.0))
        node.move_to((5.0, 5.0))
        assert node.position == (5.0, 5.0)
        assert node.get_attribute("pos") == (5.0, 5.0)

    def test_base_station_constructor(self):
        base = base_station(node_id=7, position=(1.0, 1.0))
        assert base.is_base
        assert base.node_id == 7
