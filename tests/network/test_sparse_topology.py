"""Sparse-substrate parity: CSR topologies are bit-identical to dict ones.

The scale ladder's CSR adjacency, grid-bucketed generation and array BFS are
opt-in representations of the *same* topology: every query -- adjacency rows,
radio range, hop tables (including dict iteration order), shortest paths,
connectivity, routing-tree structure, GHT/DHT home nodes -- must agree with
the dense/dict reference on the same seed, through mutations, and end to end
through the experiment harness with ``REPRO_SPARSE=1``.
"""

import pytest

from repro.network.topology import (
    SPARSE_NODE_THRESHOLD,
    CSRAdjacency,
    random_topology,
    scale_preset_degree,
    sparse_mode_enabled,
    topology_from_preset,
)
from repro.routing.dht import DHTSubstrate
from repro.routing.ght import GHTSubstrate
from repro.routing.multitree import MultiTreeSubstrate
from repro.routing.tree import RoutingTree

SEEDS = [0, 1, 2, 5]


def make_pair(seed, num_nodes=60, degree=7.0):
    """(dense reference, sparse CSR) topologies from identical inputs."""
    dense = random_topology(
        num_nodes=num_nodes, average_degree=degree, seed=seed, sparse=False
    )
    sparse = random_topology(
        num_nodes=num_nodes, average_degree=degree, seed=seed, sparse=True
    )
    assert not isinstance(dense.adjacency, CSRAdjacency)
    assert isinstance(sparse.adjacency, CSRAdjacency)
    return dense, sparse


class TestGenerationParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_nodes", [40, 120])
    def test_deployment_identical(self, seed, num_nodes):
        dense, sparse = make_pair(seed, num_nodes=num_nodes)
        assert sparse.radio_range == dense.radio_range
        assert sparse.base_id == dense.base_id
        assert sparse.node_ids == dense.node_ids
        for node in dense.node_ids:
            assert sparse.nodes[node].position == dense.nodes[node].position
            assert sparse.adjacency.row_list(node) == sorted(dense.adjacency[node])
            assert sparse.neighbors(node) == dense.neighbors(node)
        assert sparse.average_degree() == pytest.approx(dense.average_degree())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hop_tables_and_paths_identical(self, seed):
        dense, sparse = make_pair(seed)
        for source in dense.node_ids[::7]:
            dense_hops = dense.shortest_hops(source)
            sparse_hops = sparse.shortest_hops(source)
            assert sparse_hops == dense_hops
            # BFS discovery order shows through dict iteration order.
            assert list(sparse_hops) == list(dense_hops)
            for target in dense.node_ids[::5]:
                assert sparse.shortest_path(source, target) == \
                    dense.shortest_path(source, target)
        assert sparse.is_connected() == dense.is_connected()
        assert sparse.is_connected(only_alive=False) == \
            dense.is_connected(only_alive=False)

    def test_sparse_mode_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPARSE", raising=False)
        assert not sparse_mode_enabled(SPARSE_NODE_THRESHOLD - 1)
        assert sparse_mode_enabled(SPARSE_NODE_THRESHOLD)
        monkeypatch.setenv("REPRO_SPARSE", "1")
        assert sparse_mode_enabled(10)
        monkeypatch.setenv("REPRO_SPARSE", "0")
        assert not sparse_mode_enabled(10 ** 6)
        # the explicit argument beats the environment
        assert sparse_mode_enabled(10, sparse=True)

    def test_scale_preset_connected_and_sparse(self):
        topo = topology_from_preset("scale", num_nodes=5000, seed=0)
        assert isinstance(topo.adjacency, CSRAdjacency)
        assert topo.is_connected()
        assert len(topo.nodes) == 5000
        assert scale_preset_degree(5000) >= 12.0
        assert scale_preset_degree(1_000_000) > scale_preset_degree(10_000)


class TestMutationParity:
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_failure_and_recovery(self, seed):
        dense, sparse = make_pair(seed)
        victim = next(n for n in dense.node_ids if n != dense.base_id)
        for topo in (dense, sparse):
            topo.shortest_hops(topo.base_id)  # warm, then invalidate
            topo.nodes[victim].fail()
        assert sparse.shortest_hops(sparse.base_id) == \
            dense.shortest_hops(dense.base_id)
        for node in dense.node_ids[::9]:
            assert sparse.neighbors(node) == dense.neighbors(node)
        for topo in (dense, sparse):
            topo.nodes[victim].recover()
        assert sparse.shortest_hops(sparse.base_id) == \
            dense.shortest_hops(dense.base_id)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_link_surgery(self, seed):
        dense, sparse = make_pair(seed)
        leaf = next(
            n for n in reversed(dense.node_ids)
            if n != dense.base_id and len(dense.neighbors(n)) >= 2
        )
        for topo in (dense, sparse):
            topo.remove_links_of(leaf)
        assert sparse.neighbors(leaf) == dense.neighbors(leaf) == []
        assert sparse.shortest_hops(sparse.base_id) == \
            dense.shortest_hops(dense.base_id)
        for topo in (dense, sparse):
            topo.rebuild_links_of(leaf)
        for node in dense.node_ids[::9] + [leaf]:
            assert sparse.neighbors(node) == dense.neighbors(node)
        assert sparse.shortest_hops(leaf) == dense.shortest_hops(leaf)

    def test_copy_is_independent(self):
        _, sparse = make_pair(0)
        clone = sparse.copy()
        victim = next(n for n in sparse.node_ids if n != sparse.base_id)
        clone.nodes[victim].fail()
        assert sparse.nodes[victim].alive
        assert victim in sparse.shortest_hops(sparse.base_id)
        assert victim not in clone.shortest_hops(clone.base_id)


class TestRoutingParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_routing_tree(self, seed):
        dense, sparse = make_pair(seed)
        for tie_break_seed in (0, 1, 2):
            reference = RoutingTree(dense, tie_break_seed=tie_break_seed)
            tree = RoutingTree(sparse, tie_break_seed=tie_break_seed)
            assert tree.parent == reference.parent
            assert tree.children == reference.children
            # dict insertion order == BFS discovery order in both builds
            assert list(tree.depth) == list(reference.depth)
            assert tree.depth == reference.depth

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_tree_repair_after_failure(self, seed):
        dense, sparse = make_pair(seed)
        reference = RoutingTree(dense)
        tree = RoutingTree(sparse)
        victim = next(
            n for n in dense.node_ids
            if n != dense.base_id and reference.children.get(n)
        )
        dense.nodes[victim].fail()
        sparse.nodes[victim].fail()
        assert tree.repair_after_failure(victim) == \
            reference.repair_after_failure(victim)
        assert tree.parent == reference.parent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_multitree_roots(self, seed):
        dense, sparse = make_pair(seed)
        reference = MultiTreeSubstrate(dense, num_trees=3)
        substrate = MultiTreeSubstrate(sparse, num_trees=3)
        assert [t.root for t in substrate.trees] == \
            [t.root for t in reference.trees]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ght_and_dht_home_nodes(self, seed):
        dense, sparse = make_pair(seed)
        ght_ref, ght = GHTSubstrate(dense), GHTSubstrate(sparse)
        dht_ref, dht = DHTSubstrate(dense), DHTSubstrate(sparse)
        keys = ["alpha", "beta", ("pair", 3), 42, "zz"]
        for key in keys:
            assert ght.home_node(key) == ght_ref.home_node(key)
            assert dht.home_node(key) == dht_ref.home_node(key)
            assert ght.greedy_route(5, key) == ght_ref.greedy_route(5, key)
            assert dht.route(7, key) == dht_ref.route(7, key)
        # epoch-invalidated rescan after a failure still agrees
        victim = next(n for n in dense.node_ids if n != dense.base_id)
        dense.nodes[victim].fail()
        sparse.nodes[victim].fail()
        for key in keys:
            assert ght.home_node(key) == ght_ref.home_node(key)
            assert dht.home_node(key) == dht_ref.home_node(key)


class TestLandmarks:
    def test_approx_hops_is_an_exact_upper_bound(self):
        _, sparse = make_pair(3, num_nodes=120)
        cache = sparse.routing_cache.validate()
        landmark_ids, matrix = cache.landmark_tables(num_landmarks=4)
        assert matrix.shape == (len(landmark_ids), len(sparse.nodes))
        nodes = sparse.node_ids
        for a in nodes[::11]:
            assert cache.approx_hops(a, a, num_landmarks=4) == 0
            for b in nodes[::13]:
                exact = sparse.hops_between(a, b)
                approx = cache.approx_hops(a, b, num_landmarks=4)
                if exact is None:
                    continue
                assert approx >= exact
        # exact whenever one endpoint is a landmark (triangle collapses)
        for landmark in landmark_ids.tolist():
            for b in nodes[::17]:
                exact = sparse.hops_between(landmark, b)
                if exact is not None:
                    assert cache.approx_hops(landmark, b, num_landmarks=4) == exact


class TestExperimentIdentity:
    """Figure experiments are byte-identical with the sparse substrate forced."""

    def _run_fig14(self, monkeypatch, forced):
        from repro.experiments import harness
        from repro.experiments.figures_adaptive import fig14_failure

        monkeypatch.setenv("REPRO_SPARSE", "1" if forced else "0")
        harness._TOPOLOGY_CACHE.clear()
        try:
            return fig14_failure(scale=harness.SCALES["smoke"],
                                 join_selectivities=(0.2,))
        finally:
            harness._TOPOLOGY_CACHE.clear()

    def test_fig14_failure_same_with_sparse_forced(self, monkeypatch):
        assert self._run_fig14(monkeypatch, forced=False) == \
            self._run_fig14(monkeypatch, forced=True)

    def test_engine_run_same_with_sparse_forced(self, monkeypatch):
        from repro.engine.execution import execute_run
        from repro.engine.spec import resolve_scale
        from repro.engine.workload import reset_workload_caches
        from repro.experiments.scenarios import resolve_scenario

        spec = next(
            s for s in resolve_scenario("scale-ladder-smoke").expand(
                resolve_scale("smoke"))
            if s.num_nodes == 1000 and s.algorithm == "base"
        )

        def run(forced):
            monkeypatch.setenv("REPRO_SPARSE", "1" if forced else "0")
            reset_workload_caches()
            try:
                return execute_run(spec).report
            finally:
                reset_workload_caches()

        assert run(False) == run(True)
