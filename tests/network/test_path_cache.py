"""Correctness of the routing/transport performance layer.

The PathCache must be invalidated by every topology mutation (link surgery,
node death/recovery, moves), the transfer fast path must produce traffic
statistics bit-identical to the per-hop reference implementation on perfect
links, and the figure experiments must produce the same results with the
caches enabled as with them disabled.
"""

import pytest

from repro.network.failures import FailureInjector
from repro.network.links import LinkModel, lossy_links, perfect_links
from repro.network.message import MessageKind
from repro.network.mobility import is_leaf, move_leaf_node
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology, grid_topology, random_topology
from repro.network.traffic import TrafficStats


def fresh_copy(topology: Topology) -> Topology:
    """A cold-cache clone used as the uncached reference."""
    return topology.copy()


@pytest.fixture
def topo():
    return random_topology(num_nodes=40, average_degree=7.0, seed=7)


class TestPathCacheEquivalence:
    def test_cached_queries_match_cold_copy(self, topo):
        # Warm the cache with a first round of queries, then compare every
        # result against a cold topology and against the cache-disabled path.
        nodes = topo.node_ids
        for source in nodes[::5]:
            topo.shortest_hops(source)
        cold = fresh_copy(topo)
        try:
            for source in nodes[::5]:
                assert topo.shortest_hops(source) == cold.shortest_hops(source)
                for target in nodes[::3]:
                    assert topo.shortest_path(source, target) == \
                        cold.shortest_path(source, target)
                    assert topo.hops_between(source, target) == \
                        cold.hops_between(source, target)
            Topology.routing_cache_enabled = False
            for source in nodes[::5]:
                assert topo.shortest_hops(source) == cold.shortest_hops(source)
                assert topo.neighbors(source) == cold.neighbors(source)
        finally:
            Topology.routing_cache_enabled = True

    def test_hops_between_matches_path_length(self, topo):
        for source in topo.node_ids[::7]:
            for target in topo.node_ids[::4]:
                path = topo.shortest_path(source, target)
                hops = topo.hops_between(source, target)
                full = topo.hops_between(source, target, only_alive=False)
                assert hops == (None if path is None else len(path) - 1)
                assert full == hops  # everyone alive: views agree

    def test_shortest_hops_returns_mutable_copy(self, topo):
        first = topo.shortest_hops(topo.base_id)
        first[topo.base_id] = 999
        assert topo.shortest_hops(topo.base_id)[topo.base_id] == 0


class TestInvalidation:
    def test_direct_node_fail_invalidates(self, topo):
        base = topo.base_id
        victim = next(n for n in topo.node_ids if n != base)
        before = topo.routing_epoch
        topo.shortest_hops(base)  # warm
        topo.nodes[victim].fail()
        assert topo.routing_epoch > before
        assert victim not in topo.shortest_hops(base)
        assert all(victim not in topo.neighbors(n) for n in topo.node_ids)
        topo.nodes[victim].recover()
        assert victim in topo.shortest_hops(base)

    def test_failure_injector_recomputes_paths(self, topo):
        base = topo.base_id
        far = max(topo.shortest_hops(base), key=lambda n: topo.shortest_hops(base)[n])
        old_path = topo.shortest_path(far, base)
        victim = old_path[len(old_path) // 2]
        injector = FailureInjector()
        injector.schedule(victim, sampling_cycle=0)
        assert injector.apply(topo, 0) == [victim]
        reference = fresh_copy(topo)
        new_path = topo.shortest_path(far, base)
        assert new_path == reference.shortest_path(far, base)
        if new_path is not None:
            assert victim not in new_path
        assert topo.shortest_hops(far) == reference.shortest_hops(far)

    def test_mobility_rebuild_recomputes_paths(self):
        topo = grid_topology(num_nodes=36)
        leaf = next(
            n for n in reversed(topo.node_ids)
            if n != topo.base_id and len(topo.neighbors(n)) >= 3
        )
        topo.shortest_hops(topo.base_id)  # warm
        before = topo.routing_epoch
        # Manual link surgery (what move_leaf_node performs) must invalidate.
        topo.remove_links_of(leaf)
        assert topo.routing_epoch > before
        assert topo.neighbors(leaf) == []
        assert leaf not in topo.shortest_hops(topo.base_id)
        topo.rebuild_links_of(leaf)
        reference = fresh_copy(topo)
        assert topo.shortest_hops(topo.base_id) == reference.shortest_hops(topo.base_id)

    def test_move_leaf_node_keeps_cache_fresh(self):
        topo = random_topology(num_nodes=40, average_degree=8.0, seed=3)
        mobile = next(
            n for n in reversed(topo.node_ids)
            if n != topo.base_id and is_leaf(topo, n)
        )
        topo.shortest_hops(topo.base_id)  # warm
        x, y = topo.nodes[mobile].position
        event = move_leaf_node(topo, mobile, (x + topo.radio_range / 3, y))
        reference = fresh_copy(topo)
        assert topo.neighbors(mobile) == reference.neighbors(mobile)
        assert topo.shortest_path(mobile, topo.base_id) == \
            reference.shortest_path(mobile, topo.base_id)
        assert event.node_id == mobile


class TestTransportEquivalence:
    def _run_traffic(self, fast: bool, link_model=None) -> TrafficStats:
        topo = grid_topology(num_nodes=49)
        simulator = NetworkSimulator(
            topo, link_model=link_model or perfect_links(), fast_transport=fast
        )
        base = topo.base_id
        for node in topo.node_ids:
            path = topo.shortest_path(node, base)
            simulator.transfer(path, 24, MessageKind.DATA)
            simulator.transfer(list(reversed(path)), 13, MessageKind.CONTROL)
        simulator.flood(base, 13)
        for node in topo.node_ids[::5]:
            simulator.broadcast(node, 11, MessageKind.TREE_MAINT)
        # A path through a dead node must charge identically in both modes.
        victim = next(n for n in topo.node_ids if n != base)
        witness = topo.neighbors(victim)[0]
        topo.nodes[victim].fail()
        simulator.transfer([witness, victim, base], 24, MessageKind.DATA)
        return simulator.stats

    def test_fast_and_slow_paths_bit_identical_on_perfect_links(self):
        fast = self._run_traffic(fast=True)
        slow = self._run_traffic(fast=False)
        assert dict(fast.transmitted) == dict(slow.transmitted)
        assert dict(fast.received) == dict(slow.received)
        assert dict(fast.by_kind) == dict(slow.by_kind)
        assert fast.messages_sent == slow.messages_sent
        assert fast.messages_dropped == slow.messages_dropped

    def test_broadcast_never_charges_dead_neighbours(self):
        topo = grid_topology(num_nodes=25)
        simulator = NetworkSimulator(topo)
        centre = topo.base_id
        victim = topo.neighbors(centre)[0]
        topo.nodes[victim].fail()
        heard = simulator.broadcast(centre, 10, MessageKind.CONTROL)
        assert victim not in heard
        assert simulator.stats.received.get(victim, 0.0) == 0.0
        assert simulator.stats.at_node(victim) == 0.0

    def test_flood_counts_each_alive_node_once(self):
        topo = grid_topology(num_nodes=49)
        dead = [n for n in topo.node_ids if n != topo.base_id][:3]
        for node in dead:
            topo.nodes[node].fail()
        simulator = NetworkSimulator(topo)
        transmissions = simulator.flood(topo.base_id, 13)
        alive = sum(1 for n in topo.nodes.values() if n.alive)
        assert transmissions == alive
        assert simulator.stats.messages_sent == alive

    def test_batched_lossy_sampling_matches_analytic_mean(self):
        model = lossy_links(0.3, seed=11, max_retransmissions=3)
        delivered, attempts = model.attempt_hops(200_000)
        assert attempts.min() >= 1 and attempts.max() <= 4
        assert abs(attempts.mean() - model.expected_attempts()) < 0.02
        # Truncated-geometric failure probability: p_loss ** (R + 1).
        assert abs((~delivered).mean() - 0.3 ** 4) < 0.005

    def test_lossy_fast_transport_is_deterministic_per_seed(self):
        def run():
            topo = grid_topology(num_nodes=25)
            sim = NetworkSimulator(topo, link_model=lossy_links(0.2, seed=5))
            for node in topo.node_ids:
                sim.transfer(topo.shortest_path(node, topo.base_id), 24)
            return sim.stats.total(), sim.stats.messages_dropped

        assert run() == run()


class TestExperimentEquivalence:
    """Fig 14 / App G produce the same rows with caches on and off."""

    def _clear_experiment_caches(self):
        from repro.experiments import harness

        harness._TOPOLOGY_CACHE.clear()

    def _run_fig14(self):
        from repro.experiments.figures_adaptive import fig14_failure
        from repro.experiments.harness import SCALES

        self._clear_experiment_caches()
        return fig14_failure(scale=SCALES["smoke"], join_selectivities=(0.2,))

    def _run_appg(self):
        from repro.experiments.figures_substrate import appg_mobility
        from repro.experiments.harness import SCALES

        self._clear_experiment_caches()
        return appg_mobility(scale=SCALES["smoke"], num_moves=1)

    def test_fig14_failure_same_with_cache_disabled(self):
        with_cache = self._run_fig14()
        try:
            Topology.routing_cache_enabled = False
            without_cache = self._run_fig14()
        finally:
            Topology.routing_cache_enabled = True
        assert with_cache == without_cache

    def test_appg_mobility_same_with_cache_disabled(self):
        with_cache = self._run_appg()
        try:
            Topology.routing_cache_enabled = False
            without_cache = self._run_appg()
        finally:
            Topology.routing_cache_enabled = True
        assert with_cache == without_cache
