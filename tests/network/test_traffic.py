"""Tests for traffic statistics."""

import pytest

from repro.network import MessageKind, TrafficAccounting, TrafficStats


class TestTrafficStats:
    def test_byte_accounting(self):
        stats = TrafficStats()
        stats.charge_transmission(1, 20, MessageKind.DATA, receiver=2)
        stats.charge_transmission(2, 20, MessageKind.DATA, receiver=3)
        assert stats.total() == 40.0
        assert stats.at_node(2) == 40.0  # 20 received + 20 transmitted
        assert stats.at_node(3) == 20.0
        assert stats.messages_sent == 2

    def test_message_accounting(self):
        stats = TrafficStats(accounting=TrafficAccounting.MESSAGES)
        stats.charge_transmission(1, 500, MessageKind.DATA, receiver=2)
        assert stats.total() == 1.0
        # at_node counts transmitted + received; node 2 only received 1 message.
        assert stats.at_node(2) == 1.0
        assert stats.at_node(1) == 1.0

    def test_retransmissions_charged(self):
        stats = TrafficStats()
        stats.charge_transmission(1, 10, MessageKind.DATA, attempts=3, receiver=2)
        assert stats.transmitted[1] == 30.0
        assert stats.received[2] == 10.0

    def test_by_kind_breakdown(self):
        stats = TrafficStats()
        stats.charge_transmission(1, 10, MessageKind.DATA)
        stats.charge_transmission(1, 5, MessageKind.CONTROL)
        breakdown = stats.traffic_by_kind()
        assert breakdown[MessageKind.DATA] == 10.0
        assert breakdown[MessageKind.CONTROL] == 5.0

    def test_top_loaded_nodes(self):
        stats = TrafficStats()
        for node, amount in [(1, 100), (2, 50), (3, 75)]:
            stats.charge_transmission(node, amount, MessageKind.DATA)
        top = stats.top_loaded_nodes(k=2)
        assert [node for node, _ in top] == [1, 3]

    def test_max_node_load_with_exclusion(self):
        stats = TrafficStats()
        stats.charge_transmission(0, 1000, MessageKind.DATA)
        stats.charge_transmission(5, 10, MessageKind.DATA)
        assert stats.max_node_load() == 1000.0
        assert stats.max_node_load(exclude=(0,)) == 10.0

    def test_drops(self):
        stats = TrafficStats()
        stats.charge_drop()
        stats.charge_drop(queue_drop=True)
        assert stats.messages_dropped == 2
        assert stats.queue_drops == 1

    def test_merge(self):
        left = TrafficStats()
        right = TrafficStats()
        left.charge_transmission(1, 10, MessageKind.DATA, receiver=2)
        right.charge_transmission(1, 5, MessageKind.CONTROL)
        right.charge_drop()
        merged = left.merge(right)
        assert merged.total() == 15.0
        assert merged.transmitted[1] == 15.0
        assert merged.messages_dropped == 1
        # Originals untouched.
        assert left.total() == 10.0

    def test_merge_accounting_mismatch(self):
        with pytest.raises(ValueError):
            TrafficStats().merge(TrafficStats(accounting=TrafficAccounting.MESSAGES))

    def test_reset_and_snapshot(self):
        stats = TrafficStats()
        stats.charge_transmission(1, 10, MessageKind.DATA)
        snap = stats.snapshot()
        assert snap["total"] == 10.0
        stats.reset()
        assert stats.total() == 0.0
        assert stats.messages_sent == 0

    def test_snapshot_carries_by_kind_and_max_node_load(self):
        """Harness rows read these directly instead of re-deriving them."""
        stats = TrafficStats()
        stats.charge_transmission(1, 10, MessageKind.DATA, receiver=2)
        stats.charge_transmission(2, 5, MessageKind.CONTROL)
        snap = stats.snapshot()
        # original keys kept for compatibility
        assert {"total", "messages_sent", "messages_dropped",
                "queue_drops"} <= set(snap)
        assert snap["max_node_load"] == stats.max_node_load() == 15.0
        assert snap["by_kind"] == {"data": 10.0, "control": 5.0}
