"""Tests for failure injection and mobility support."""

import pytest

from repro.network import FailureInjector, MobilityEvent, move_leaf_node
from repro.network.failures import FailureEvent, no_failures
from repro.network.mobility import candidate_positions_near, is_leaf, max_supported_speed
from repro.network.topology import grid_topology, random_topology


class TestFailureInjector:
    def test_schedule_and_apply(self):
        topo = random_topology(num_nodes=20, average_degree=6, seed=0)
        injector = FailureInjector()
        victim = [n for n in topo.node_ids if n != topo.base_id][0]
        injector.schedule(victim, sampling_cycle=5)
        assert injector.failures_at(5) == [victim]
        assert injector.apply(topo, 4) == []
        assert injector.apply(topo, 5) == [victim]
        assert not topo.nodes[victim].alive
        # Re-applying does nothing (node already dead).
        assert injector.apply(topo, 5) == []

    def test_schedule_fraction(self):
        injector = FailureInjector()
        injector.schedule_fraction_of_run(3, total_cycles=100, fraction=0.45)
        assert injector.events == [FailureEvent(node_id=3, sampling_cycle=45)]
        with pytest.raises(ValueError):
            injector.schedule_fraction_of_run(3, 100, 1.5)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(node_id=1, sampling_cycle=-1)

    def test_all_failed_by(self):
        injector = FailureInjector()
        injector.schedule(1, 5)
        injector.schedule(2, 10)
        assert injector.all_failed_by(7) == [1]
        assert injector.all_failed_by(10) == [1, 2]

    def test_no_failures_helper(self):
        assert no_failures().is_empty()


class TestMobility:
    def test_move_leaf_node_rewires_links(self):
        topo = grid_topology(num_nodes=25)
        # A corner node is a leaf in the sense that its removal keeps connectivity.
        corner = 0
        assert is_leaf(topo, corner)
        old_neighbours = set(topo.neighbors(corner))
        target = topo.nodes[24].position
        event = move_leaf_node(topo, corner, (target[0] - 1.0, target[1] - 1.0))
        assert isinstance(event, MobilityEvent)
        assert set(event.removed_links) <= old_neighbours
        assert event.added_links
        assert topo.is_connected()

    def test_cannot_move_base(self):
        topo = grid_topology(num_nodes=25)
        with pytest.raises(ValueError):
            move_leaf_node(topo, topo.base_id, (0.0, 0.0))

    def test_unknown_node(self):
        topo = grid_topology(num_nodes=25)
        with pytest.raises(KeyError):
            move_leaf_node(topo, 999, (0.0, 0.0))

    def test_move_out_of_range_rolls_back(self):
        topo = grid_topology(num_nodes=25)
        original = topo.nodes[0].position
        with pytest.raises(ValueError):
            move_leaf_node(topo, 0, (1e6, 1e6))
        assert topo.nodes[0].position == original
        assert topo.neighbors(0)  # links restored

    def test_changed_neighbors_property(self):
        event = MobilityEvent(
            node_id=1, old_position=(0, 0), new_position=(1, 1),
            removed_links=(2, 3), added_links=(3, 4),
        )
        assert event.changed_neighbors == (2, 3, 4)

    def test_max_supported_speed(self):
        # Appendix G: 10 m radio range, ~20 cycles to propagate -> 0.5 m/s.
        assert max_supported_speed(10.0, 20.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            max_supported_speed(10.0, 0.0)

    def test_candidate_positions(self):
        topo = grid_topology(num_nodes=25)
        candidates = candidate_positions_near(topo, 0, radius=5.0, count=4)
        assert len(candidates) == 4
        x0, y0 = topo.nodes[0].position
        for x, y in candidates:
            assert ((x - x0) ** 2 + (y - y0) ** 2) ** 0.5 == pytest.approx(5.0)
