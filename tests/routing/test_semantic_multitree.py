"""Tests for semantic routing tables and the multi-tree substrate."""

import pytest

from repro.network import NetworkSimulator
from repro.network.topology import grid_topology, random_topology
from repro.routing import MultiTreeSubstrate, RoutingTree, SemanticRoutingTable
from repro.routing.paths import path_quality_for_pairs
from repro.summaries import BloomFilterSummary, IntervalSummary


@pytest.fixture
def topo():
    topo = random_topology(num_nodes=50, average_degree=7, seed=11)
    for node_id, node in topo.nodes.items():
        node.set_static("group", node_id % 5)
    return topo


def bloom_factory():
    return BloomFilterSummary(num_bits=256)


class TestSemanticRoutingTable:
    def test_requires_extractors(self, topo):
        tree = RoutingTree(topo)
        with pytest.raises(ValueError):
            SemanticRoutingTable(tree, {"group": bloom_factory}, {})

    def test_subtree_summaries_cover_subtree_values(self, topo):
        tree = RoutingTree(topo)
        table = SemanticRoutingTable(
            tree,
            {"group": bloom_factory},
            {"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        for node in topo.node_ids:
            summary = table.subtree_summary(node, "group")
            for member in tree.subtree_nodes(node):
                value = topo.nodes[member].get_attribute("group")
                assert summary.might_contain(value)

    def test_child_summary_pruning_no_false_negatives(self, topo):
        tree = RoutingTree(topo)
        table = SemanticRoutingTable(
            tree,
            {"group": bloom_factory},
            {"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        target_value = 3
        holders = {
            nid for nid in topo.node_ids
            if topo.nodes[nid].get_attribute("group") == target_value
        }
        # Every holder must be reachable through children flagged as matching.
        for node in topo.node_ids:
            matching_children = set(
                table.children_that_might_contain(node, "group", target_value)
            )
            for child in tree.children_of(node):
                subtree = set(tree.subtree_nodes(child))
                if subtree & holders:
                    assert child in matching_children

    def test_interval_summaries(self, topo):
        tree = RoutingTree(topo)
        table = SemanticRoutingTable(
            tree,
            {"id": IntervalSummary},
            {"id": lambda nid: nid},
        )
        root_summary = table.subtree_summary(tree.root, "id")
        assert root_summary.lo == 0
        assert root_summary.hi == max(topo.node_ids)

    def test_maintenance_traffic_charged(self, topo):
        tree = RoutingTree(topo)
        sim = NetworkSimulator(topo)
        table = SemanticRoutingTable(
            tree,
            {"group": bloom_factory},
            {"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        table.build(sim)
        assert sim.stats.total() > 0
        assert table.total_maintenance_bytes() > 0


class TestMultiTreeSubstrate:
    def test_tree_roots_are_spread_out(self, topo):
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        roots = [tree.root for tree in substrate.trees]
        assert roots[0] == topo.base_id
        assert len(set(roots)) == 3
        # Later roots should be several hops from the base.
        assert topo.hops_between(roots[0], roots[1]) >= 2

    def test_needs_at_least_one_tree(self, topo):
        with pytest.raises(ValueError):
            MultiTreeSubstrate(topo, num_trees=0)

    def test_hops_to_base_matches_primary_tree(self, topo):
        substrate = MultiTreeSubstrate(topo, num_trees=2)
        hops = topo.shortest_hops(topo.base_id)
        for node in topo.node_ids:
            assert substrate.hops_to_base(node) == hops[node]

    def test_best_route_improves_with_more_trees(self, topo):
        pairs = [(topo.node_ids[i], topo.node_ids[-1 - i]) for i in range(10)]
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        single = path_quality_for_pairs(substrate.paths_for_pairs(pairs, num_trees=1))
        triple = path_quality_for_pairs(substrate.paths_for_pairs(pairs, num_trees=3))
        assert triple.average_path_length <= single.average_path_length

    def test_best_route_endpoints_and_adjacency(self, topo):
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        route = substrate.best_route(topo.node_ids[2], topo.node_ids[-3])
        assert route[0] == topo.node_ids[2]
        assert route[-1] == topo.node_ids[-3]
        for a, b in zip(route, route[1:]):
            assert b in topo.adjacency[a]

    def test_content_search_finds_all_holders(self, topo):
        substrate = MultiTreeSubstrate(
            topo,
            num_trees=2,
            indexed_attributes={"group": bloom_factory},
            value_extractors={"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        source = topo.node_ids[5]
        wanted = topo.nodes[source].get_attribute("group")
        result = substrate.find_equality_matches(
            source,
            "group",
            wanted,
            node_value=lambda nid: topo.nodes[nid].get_attribute("group"),
        )
        expected = {
            nid for nid in topo.node_ids
            if nid != source and topo.nodes[nid].get_attribute("group") == wanted
        }
        assert set(result.targets()) == expected
        assert result.edges_traversed > 0
        # Each discovered path must start at the source and end at the target.
        for target, candidates in result.paths.items():
            for pair_path in candidates:
                assert pair_path.path[0] == source
                assert pair_path.path[-1] == target
                assert len(pair_path.hops_to_base) == len(pair_path.path)

    def test_content_search_requires_index(self, topo):
        substrate = MultiTreeSubstrate(topo, num_trees=1)
        with pytest.raises(RuntimeError):
            substrate.find_equality_matches(
                topo.node_ids[0], "group", 1, node_value=lambda nid: 1
            )

    def test_content_search_charges_simulator(self, topo):
        sim = NetworkSimulator(topo)
        substrate = MultiTreeSubstrate(
            topo,
            num_trees=2,
            indexed_attributes={"group": bloom_factory},
            value_extractors={"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        source = topo.node_ids[5]
        substrate.find_equality_matches(
            source,
            "group",
            topo.nodes[source].get_attribute("group"),
            node_value=lambda nid: topo.nodes[nid].get_attribute("group"),
            simulator=sim,
        )
        assert sim.stats.total() > 0

    def test_construction_traffic(self, topo):
        sim = NetworkSimulator(topo)
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        transmissions = substrate.construction_traffic(sim)
        assert transmissions == 3 * topo.num_nodes

    def test_repair_after_failure(self):
        topo = grid_topology(num_nodes=49)
        for node_id, node in topo.nodes.items():
            node.set_static("group", node_id % 3)
        substrate = MultiTreeSubstrate(
            topo,
            num_trees=2,
            indexed_attributes={"group": bloom_factory},
            value_extractors={"group": lambda nid: topo.nodes[nid].get_attribute("group")},
        )
        victim = next(
            n for n in topo.node_ids
            if n != topo.base_id
            and n not in {t.root for t in substrate.trees}
            and substrate.primary_tree.children_of(n)
        )
        topo.nodes[victim].fail()
        stranded = substrate.repair_after_failure(victim)
        assert stranded == {}
        for tree in substrate.trees:
            assert victim not in tree.covered_nodes()


class TestPathQualityTrend:
    def test_more_trees_never_hurt_path_length(self):
        """Reproduces the qualitative trend of Figure 16a."""
        topo = random_topology(num_nodes=80, average_degree=7, seed=3)
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        ids = topo.node_ids
        pairs = [(ids[i], ids[len(ids) - 1 - i]) for i in range(0, 30)]
        lengths = []
        for k in (1, 2, 3):
            quality = path_quality_for_pairs(substrate.paths_for_pairs(pairs, num_trees=k))
            lengths.append(quality.average_path_length)
        assert lengths[0] >= lengths[1] >= lengths[2]
