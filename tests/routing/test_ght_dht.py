"""Tests for the GHT/GPSR and DHT substrates."""

import pytest

from repro.network import NetworkSimulator
from repro.network.topology import grid_topology, random_topology
from repro.routing import DHTSubstrate, GHTSubstrate, MultiTreeSubstrate
from repro.routing.paths import path_quality_for_pairs


@pytest.fixture
def topo():
    return random_topology(num_nodes=60, average_degree=8, seed=9)


class TestGHT:
    def test_hash_location_inside_bounds(self, topo):
        ght = GHTSubstrate(topo)
        for key in range(25):
            x, y = ght.hash_location(key)
            xmin, ymin, xmax, ymax = ght._bounds
            assert xmin <= x <= xmax
            assert ymin <= y <= ymax

    def test_home_node_is_closest(self, topo):
        ght = GHTSubstrate(topo)
        key = 17
        home = ght.home_node(key)
        location = ght.hash_location(key)
        best = min(
            topo.node_ids, key=lambda nid: ght._distance_to(nid, location)
        )
        assert home == best

    def test_home_node_deterministic(self, topo):
        assert GHTSubstrate(topo).home_node(5) == GHTSubstrate(topo).home_node(5)

    def test_home_node_skips_dead(self, topo):
        ght = GHTSubstrate(topo)
        home = ght.home_node(7)
        topo.nodes[home].fail()
        assert ght.home_node(7) != home

    def test_greedy_route_reaches_home(self, topo):
        ght = GHTSubstrate(topo)
        for key in range(10):
            home = ght.home_node(key)
            for source in topo.node_ids[:5]:
                path = ght.greedy_route(source, key)
                assert path[0] == source
                assert path[-1] == home
                for a, b in zip(path, path[1:]):
                    assert b in topo.adjacency[a]

    def test_rendezvous_route(self, topo):
        ght = GHTSubstrate(topo)
        source, target = topo.node_ids[1], topo.node_ids[-2]
        path = ght.rendezvous_route(source, target, key=3)
        assert path[0] == source
        assert path[-1] == target

    def test_rendezvous_longer_than_direct_on_average(self, topo):
        """GHT ignores locality, so its paths are longer (Figure 16a)."""
        ght = GHTSubstrate(topo)
        substrate = MultiTreeSubstrate(topo, num_trees=3)
        ids = topo.node_ids
        pairs = [(ids[i], ids[-1 - i]) for i in range(20)]
        ght_quality = path_quality_for_pairs(
            ght.paths_for_pairs(pairs, key_of=lambda pair: pair[0] % 7)
        )
        tree_quality = path_quality_for_pairs(substrate.paths_for_pairs(pairs))
        assert ght_quality.average_path_length > tree_quality.average_path_length

    def test_charge_route(self, topo):
        ght = GHTSubstrate(topo)
        sim = NetworkSimulator(topo)
        path = ght.greedy_route(topo.node_ids[3], key=4)
        assert ght.charge_route(sim, path)
        assert sim.stats.total() > 0


class TestDHT:
    def test_home_node_deterministic_and_alive(self, topo):
        dht = DHTSubstrate(topo)
        home = dht.home_node("sensor-key")
        assert home in topo.node_ids
        assert dht.home_node("sensor-key") == home
        topo.nodes[home].fail()
        assert dht.home_node("sensor-key") != home

    def test_routes_are_shortest_paths(self, topo):
        dht = DHTSubstrate(topo)
        for key in range(5):
            home = dht.home_node(key)
            for source in topo.node_ids[:5]:
                path = dht.route(source, key)
                assert path[0] == source
                assert path[-1] == home
                assert len(path) - 1 == topo.hops_between(source, home)

    def test_rendezvous_route_endpoints(self, topo):
        dht = DHTSubstrate(topo)
        path = dht.rendezvous_route(topo.node_ids[2], topo.node_ids[-3], key=9)
        assert path[0] == topo.node_ids[2]
        assert path[-1] == topo.node_ids[-3]

    def test_hash_substrates_ignore_locality(self):
        """Both hash substrates rendezvous at a key's home node, so their paths
        are at least as long as the direct shortest paths (Section 2.2)."""
        topo = grid_topology(num_nodes=100)
        ght = GHTSubstrate(topo)
        dht = DHTSubstrate(topo)
        ids = topo.node_ids
        pairs = [(ids[i], ids[-1 - i]) for i in range(30)]
        key_of = lambda pair: pair[0] % 11
        direct = sum(topo.hops_between(a, b) for a, b in pairs) / len(pairs)
        ght_q = path_quality_for_pairs(ght.paths_for_pairs(pairs, key_of=key_of))
        dht_q = path_quality_for_pairs(dht.paths_for_pairs(pairs, key_of=key_of))
        assert ght_q.average_path_length >= direct
        assert dht_q.average_path_length >= direct

    def test_keys_spread_across_home_nodes(self, topo):
        dht = DHTSubstrate(topo)
        homes = {dht.home_node(key) for key in range(200)}
        assert len(homes) > 10
