"""Tests for routing-tree construction, routing and repair."""

import pytest

from repro.network import NetworkSimulator
from repro.network.topology import grid_topology, random_topology
from repro.routing import RoutingTree


@pytest.fixture
def topo():
    return random_topology(num_nodes=60, average_degree=7, seed=5)


class TestConstruction:
    def test_covers_all_nodes(self, topo):
        tree = RoutingTree(topo)
        assert set(tree.covered_nodes()) == set(topo.node_ids)
        assert tree.depth_of(tree.root) == 0
        assert tree.parent_of(tree.root) is None

    def test_unknown_root(self, topo):
        with pytest.raises(KeyError):
            RoutingTree(topo, root=10_000)

    def test_depths_match_bfs(self, topo):
        tree = RoutingTree(topo)
        hops = topo.shortest_hops(topo.base_id)
        for node in topo.node_ids:
            assert tree.depth_of(node) == hops[node]

    def test_parent_child_consistency(self, topo):
        tree = RoutingTree(topo)
        for node in tree.covered_nodes():
            for child in tree.children_of(node):
                assert tree.parent_of(child) == node
                assert tree.depth_of(child) == tree.depth_of(node) + 1

    def test_construction_traffic_one_broadcast_per_node(self, topo):
        tree = RoutingTree(topo)
        sim = NetworkSimulator(topo)
        count = tree.construction_traffic(sim, beacon_bytes=13)
        assert count == topo.num_nodes
        assert sim.stats.total() == 13.0 * topo.num_nodes

    def test_alternate_root(self, topo):
        other_root = [n for n in topo.node_ids if n != topo.base_id][0]
        tree = RoutingTree(topo, root=other_root)
        assert tree.root == other_root
        assert tree.depth_of(other_root) == 0


class TestRouting:
    def test_path_to_root(self, topo):
        tree = RoutingTree(topo)
        for node in topo.node_ids[:10]:
            path = tree.path_to_root(node)
            assert path[0] == node
            assert path[-1] == tree.root
            assert len(path) == tree.depth_of(node) + 1

    def test_path_from_root_reverses(self, topo):
        tree = RoutingTree(topo)
        node = topo.node_ids[7]
        assert tree.path_from_root(node) == list(reversed(tree.path_to_root(node)))

    def test_route_between_nodes(self, topo):
        tree = RoutingTree(topo)
        nodes = topo.node_ids
        source, target = nodes[3], nodes[-4]
        route = tree.route(source, target)
        assert route[0] == source
        assert route[-1] == target
        # Adjacent hops must be neighbours in the topology.
        for a, b in zip(route, route[1:]):
            assert b in topo.adjacency[a]

    def test_route_to_self(self, topo):
        tree = RoutingTree(topo)
        assert tree.route(5, 5) == [5]
        assert tree.hops_between(5, 5) == 0

    def test_uncovered_node_raises(self, topo):
        tree = RoutingTree(topo)
        with pytest.raises(KeyError):
            tree.path_to_root(10_000)

    def test_subtree_nodes_and_leaf(self, topo):
        tree = RoutingTree(topo)
        all_nodes = tree.subtree_nodes(tree.root)
        assert sorted(all_nodes) == sorted(topo.node_ids)
        leaves = [n for n in topo.node_ids if tree.is_leaf(n)]
        assert leaves  # any non-trivial tree has leaves
        for leaf in leaves[:5]:
            assert tree.subtree_nodes(leaf) == [leaf]


class TestRepair:
    def test_repair_reattaches_subtree(self):
        topo = grid_topology(num_nodes=49)
        tree = RoutingTree(topo)
        # Fail an interior node that has children in the tree.
        victim = next(
            n for n in topo.node_ids
            if n != tree.root and tree.children_of(n)
        )
        topo.nodes[victim].fail()
        stranded = tree.repair_after_failure(victim)
        assert stranded == []
        assert victim not in tree.parent
        # Tree still spans every alive node.
        alive = [n for n in topo.node_ids if topo.nodes[n].alive]
        assert sorted(tree.covered_nodes()) == sorted(alive)
        for node in tree.covered_nodes():
            if node != tree.root:
                assert tree.parent_of(node) in tree.covered_nodes()

    def test_repair_charges_traffic(self):
        topo = grid_topology(num_nodes=49)
        tree = RoutingTree(topo)
        sim = NetworkSimulator(topo)
        victim = next(
            n for n in topo.node_ids if n != tree.root and tree.children_of(n)
        )
        topo.nodes[victim].fail()
        tree.repair_after_failure(victim, simulator=sim)
        assert sim.stats.total() > 0

    def test_repair_unknown_node_is_noop(self):
        topo = grid_topology(num_nodes=25)
        tree = RoutingTree(topo)
        assert tree.repair_after_failure(10_000) == []

    def test_repair_of_leaf(self):
        topo = grid_topology(num_nodes=25)
        tree = RoutingTree(topo)
        leaf = next(n for n in topo.node_ids if tree.is_leaf(n) and n != tree.root)
        topo.nodes[leaf].fail()
        stranded = tree.repair_after_failure(leaf)
        assert stranded == []
        assert leaf not in tree.covered_nodes()
