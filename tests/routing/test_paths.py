"""Tests for path-vector utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    compress_path,
    concatenate_paths,
    path_load_profile,
    path_quality_for_pairs,
    reverse_path,
)
from repro.routing.paths import compressed_size_bytes, strip_cycles


class TestPathOps:
    def test_reverse(self):
        assert reverse_path([1, 2, 3]) == [3, 2, 1]

    def test_concatenate(self):
        assert concatenate_paths([1, 2, 3], [3, 4]) == [1, 2, 3, 4]
        assert concatenate_paths([], [3, 4]) == [3, 4]
        assert concatenate_paths([1, 2], []) == [1, 2]

    def test_concatenate_mismatch(self):
        with pytest.raises(ValueError):
            concatenate_paths([1, 2], [3, 4])

    def test_strip_cycles(self):
        assert strip_cycles([1, 2, 3, 2, 4]) == [1, 2, 4]
        assert strip_cycles([1, 2, 3]) == [1, 2, 3]
        assert strip_cycles([]) == []
        assert strip_cycles([5, 5, 5]) == [5]

    def test_compress_path(self):
        first, deltas = compress_path([10, 12, 11, 20])
        assert first == 10
        assert deltas == [2, -1, 9]
        assert compress_path([]) == (0, [])

    def test_compressed_size(self):
        assert compressed_size_bytes([]) == 0
        assert compressed_size_bytes([5]) == 2
        assert compressed_size_bytes([5, 6, 7]) == 4
        # A jump larger than a signed byte costs two bytes.
        assert compressed_size_bytes([5, 500]) == 4


class TestPathQuality:
    def test_load_profile(self):
        load = path_load_profile([[1, 2, 3], [2, 3, 4]])
        assert load == {1: 1, 2: 2, 3: 2, 4: 1}

    def test_quality_metrics(self):
        quality = path_quality_for_pairs({(1, 3): [1, 2, 3], (4, 5): [4, 5]})
        assert quality.average_path_length == pytest.approx(1.5)
        assert quality.max_node_load == 1
        assert quality.num_pairs == 2
        assert quality.unreachable_pairs == 0

    def test_quality_with_unreachable(self):
        quality = path_quality_for_pairs({(1, 3): [1, 2, 3]}, total_pairs=4)
        assert quality.unreachable_pairs == 3
        assert quality.as_dict()["num_pairs"] == 4.0

    def test_quality_empty(self):
        quality = path_quality_for_pairs({})
        assert quality.average_path_length == 0.0
        assert quality.max_node_load == 0


class TestProperties:
    @given(st.lists(st.integers(0, 300), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_strip_cycles_no_repeats(self, path):
        cleaned = strip_cycles(path)
        assert len(cleaned) == len(set(cleaned))
        assert cleaned[0] == path[0]
        assert cleaned[-1] == path[-1]

    @given(st.lists(st.integers(0, 65535), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_compress_roundtrip(self, path):
        first, deltas = compress_path(path)
        rebuilt = [first]
        for delta in deltas:
            rebuilt.append(rebuilt[-1] + delta)
        assert rebuilt == path
