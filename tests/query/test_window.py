"""Tests for tuple windows and per-pair join state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import JoinState, TupleWindow, WindowedTuple


def _wt(producer, cycle, **values):
    return WindowedTuple(producer_id=producer, cycle=cycle, values=values)


class TestTupleWindow:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            TupleWindow(0)

    def test_insert_and_eviction(self):
        window = TupleWindow(2)
        assert window.insert(_wt(1, 0, u=1)) is None
        assert window.insert(_wt(1, 1, u=2)) is None
        evicted = window.insert(_wt(1, 2, u=3))
        assert evicted is not None
        assert evicted.cycle == 0
        assert len(window) == 2
        assert [t.values["u"] for t in window.contents()] == [2, 3]

    def test_clear_and_empty(self):
        window = TupleWindow(3)
        assert window.is_empty()
        window.insert(_wt(1, 0, u=1))
        window.clear()
        assert window.is_empty()

    def test_export_import_roundtrip(self):
        window = TupleWindow(3)
        for cycle in range(3):
            window.insert(_wt(1, cycle, u=cycle))
        state = window.export_state()
        replacement = TupleWindow(3)
        replacement.import_state(state)
        assert [t.cycle for t in replacement.contents()] == [0, 1, 2]

    def test_import_truncates_to_window_size(self):
        window = TupleWindow(2)
        window.import_state([_wt(1, c, u=c) for c in range(5)])
        assert [t.cycle for t in window.contents()] == [3, 4]


class TestJoinState:
    def join_on_u(self, s, t):
        return s["u"] == t["u"]

    def test_probe_joins_against_opposite_window(self):
        state = JoinState(window_size=3, source_id=10, target_id=20)
        # Buffer two target tuples, then probe with a matching source tuple.
        state.probe(False, _wt(20, 0, u=7), self.join_on_u)
        state.probe(False, _wt(20, 1, u=8), self.join_on_u)
        results = state.probe(True, _wt(10, 2, u=7), self.join_on_u)
        assert len(results) == 1
        source_tuple, target_tuple = results[0]
        assert source_tuple.producer_id == 10
        assert target_tuple.producer_id == 20
        assert state.results_produced == 1

    def test_probe_does_not_join_own_side(self):
        state = JoinState(window_size=3, source_id=10, target_id=20)
        state.probe(True, _wt(10, 0, u=7), self.join_on_u)
        results = state.probe(True, _wt(10, 1, u=7), self.join_on_u)
        assert results == []

    def test_window_eviction_limits_matches(self):
        state = JoinState(window_size=1, source_id=1, target_id=2)
        state.probe(False, _wt(2, 0, u=5), self.join_on_u)
        state.probe(False, _wt(2, 1, u=6), self.join_on_u)  # evicts u=5
        assert state.probe(True, _wt(1, 2, u=5), self.join_on_u) == []
        assert state.probe(True, _wt(1, 3, u=6), self.join_on_u) != []

    def test_export_import_preserves_windows(self):
        state = JoinState(window_size=2, source_id=1, target_id=2)
        state.probe(True, _wt(1, 0, u=1), self.join_on_u)
        state.probe(False, _wt(2, 0, u=1), self.join_on_u)
        exported = state.export_state()
        fresh = JoinState(window_size=2, source_id=1, target_id=2)
        fresh.import_state(exported)
        assert fresh.buffered_tuple_count() == 2
        # The transferred window still joins correctly.
        assert fresh.probe(True, _wt(1, 1, u=1), self.join_on_u)

    def test_storage_bytes(self):
        state = JoinState(window_size=2, source_id=1, target_id=2)
        state.probe(True, _wt(1, 0, u=1), self.join_on_u)
        assert state.storage_bytes(bytes_per_tuple=4) == 4


class TestWindowProperties:
    @given(st.integers(1, 6), st.lists(st.integers(0, 100), max_size=40))
    @settings(max_examples=50)
    def test_window_never_exceeds_size(self, size, cycles):
        window = TupleWindow(size)
        for index, value in enumerate(cycles):
            window.insert(_wt(1, index, u=value))
            assert len(window) <= size
        # The window retains the most recent tuples.
        expected = [v for v in cycles][-size:]
        assert [t.values["u"] for t in window.contents()] == expected

    @given(st.integers(1, 4), st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=30))
    @settings(max_examples=50)
    def test_result_count_matches_bruteforce(self, window_size, events):
        """The windowed join produces exactly the pairs a brute-force replay would."""
        state = JoinState(window_size=window_size, source_id=1, target_id=2)
        source_buffer, target_buffer = [], []
        expected = 0
        for cycle, (from_source, value) in enumerate(events):
            new = _wt(1 if from_source else 2, cycle, u=value)
            opposite = target_buffer if from_source else source_buffer
            expected += sum(1 for other in opposite[-window_size:] if other.values["u"] == value)
            results = state.probe(from_source, new, lambda s, t: s["u"] == t["u"])
            (source_buffer if from_source else target_buffer).append(new)
            assert len(results) == sum(
                1 for other in opposite[-window_size:] if other.values["u"] == value
            ) if opposite else len(results) == 0
        assert state.results_produced == expected
