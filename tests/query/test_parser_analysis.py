"""Tests for the StreamSQL parser and the query analyzer."""

import pytest

from repro.query import (
    AttributeRef,
    Comparison,
    JoinQuery,
    RelationSpec,
    analyze_query,
    parse_query,
)
from repro.query.analysis import EqualityRouting, RegionRouting
from repro.query.expressions import And, FunctionCall, Literal, hash16
from repro.query.parser import QueryParseError

QUERY1_SQL = """
SELECT S.id, T.id, S.localtime
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND hash(S.u) % 2 = 0
  AND T.id > 50 AND hash(T.u) % 2 = 0
  AND S.x = T.y + 5 AND S.u = T.u
"""


class TestParser:
    def test_parse_query1(self):
        query = parse_query(QUERY1_SQL, name="query1")
        assert isinstance(query, JoinQuery)
        assert query.window_size == 3
        assert query.sample_interval == 100
        assert query.aliases == ("S", "T")
        assert query.projection[0] == AttributeRef("S", "id")
        assert len(query.projection) == 3

    def test_parse_defaults_without_window_spec(self):
        query = parse_query("SELECT S.id, T.id FROM S, T WHERE S.u = T.u")
        assert query.window_size == 1
        assert query.sample_interval == 100

    def test_parse_no_where(self):
        query = parse_query("SELECT S.id, T.id FROM S, T")
        assert query.where.evaluate({})

    def test_parenthesized_boolean(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE (S.u = T.u OR S.x = T.y) AND S.id < 5"
        )
        analysis = analyze_query(query)
        assert analysis.static_selections["S"]

    def test_parenthesized_arithmetic(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE (S.x + 1) * 2 = T.y"
        )
        clause = query.where
        assert isinstance(clause, Comparison)

    def test_operator_precedence(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE S.x + 2 * 3 = T.y"
        )
        bindings = {"S": {"x": 4}, "T": {"y": 10}}
        assert query.where.evaluate(bindings)

    def test_not_and_inequality(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE NOT S.id = 3 AND S.x <> T.y"
        )
        bindings = {"S": {"id": 4, "x": 1}, "T": {"y": 2}}
        assert query.where.evaluate(bindings)

    def test_function_call_and_modulo(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE hash(S.u) % 2 = 0"
        )
        value = next(v for v in range(100) if hash16(v) % 2 == 0)
        assert query.where.evaluate({"S": {"u": value}, "T": {}})

    def test_unary_minus(self):
        query = parse_query("SELECT S.id, T.id FROM S, T WHERE S.x > -5")
        assert query.where.evaluate({"S": {"x": 0}, "T": {}})

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT FROM S, T",
            "SELECT S.id FROM S",                      # only one relation
            "SELECT S.id, T.id FROM S, T WHERE S.id",  # missing comparison
            "SELECT S.id, T.id FROM S, T [bogus=3]",
            "SELECT id FROM S, T",                     # unqualified attribute
            "SELECT S.id, T.id FROM S, T WHERE S.id < 5 extra",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)


class TestAnalyzer:
    def test_query1_classification(self):
        analysis = analyze_query(parse_query(QUERY1_SQL, name="query1"))
        # Static selections: id bounds for both relations.
        assert len(analysis.static_selections["S"]) == 1
        assert len(analysis.static_selections["T"]) == 1
        # Dynamic selections: the hash(u) producer filters.
        assert len(analysis.dynamic_selections["S"]) == 1
        assert len(analysis.dynamic_selections["T"]) == 1
        # Join clauses: S.x = T.y + 5 static (routable), S.u = T.u dynamic.
        assert len(analysis.static_join_clauses) == 1
        assert len(analysis.dynamic_join_clauses) == 1
        routing = analysis.routing_predicate
        assert isinstance(routing, EqualityRouting)
        assert routing.indexed_attribute == "y"
        assert routing.indexed_alias == "T"
        # S.x = T.y + 5  =>  for a node with x=12 the matching T.y is 7.
        assert routing.required_value({"x": 12}) == 7
        assert analysis.secondary_static_join_clauses == []

    def test_eligibility_and_producer_filter(self):
        analysis = analyze_query(parse_query(QUERY1_SQL, name="query1"))
        assert analysis.node_eligible("S", {"id": 10})
        assert not analysis.node_eligible("S", {"id": 30})
        assert analysis.node_eligible("T", {"id": 60})
        even_u = next(v for v in range(100) if hash16(v) % 2 == 0)
        odd_u = next(v for v in range(100) if hash16(v) % 2 == 1)
        assert analysis.producer_sends("S", {"u": even_u})
        assert not analysis.producer_sends("S", {"u": odd_u})

    def test_tuples_join_dynamic_clause(self):
        analysis = analyze_query(parse_query(QUERY1_SQL, name="query1"))
        assert analysis.tuples_join({"u": 3}, {"u": 3})
        assert not analysis.tuples_join({"u": 3}, {"u": 4})
        assert analysis.has_dynamic_join()

    def test_secondary_static_join_clause(self):
        # Query 2 style: two static join clauses; one is picked for routing.
        query = parse_query(
            "SELECT S.id, T.id FROM S, T "
            "WHERE S.rid = 0 AND T.rid = 3 AND S.cid = T.cid "
            "AND S.id % 4 = T.id % 4 AND S.u = T.u",
            name="query2",
        )
        analysis = analyze_query(query)
        assert len(analysis.static_join_clauses) == 2
        assert isinstance(analysis.routing_predicate, EqualityRouting)
        assert analysis.routing_predicate.indexed_attribute == "cid"
        assert len(analysis.secondary_static_join_clauses) == 1
        # Pair-level static check combines both clauses.
        assert analysis.pair_joins_statically(
            {"cid": 2, "id": 8}, {"cid": 2, "id": 12}
        )
        assert not analysis.pair_joins_statically(
            {"cid": 2, "id": 8}, {"cid": 2, "id": 13}
        )

    def test_region_routing_predicate(self):
        query = parse_query(
            "SELECT S.id, T.id FROM S, T "
            "WHERE dist(S.pos, T.pos) < 5 AND S.id < T.id "
            "AND abs(S.v - T.v) > 1000",
            name="query3",
        )
        analysis = analyze_query(query)
        routing = analysis.routing_predicate
        assert isinstance(routing, RegionRouting)
        assert routing.radius == 5.0
        assert len(analysis.secondary_static_join_clauses) == 1
        assert len(analysis.dynamic_join_clauses) == 1
        assert analysis.tuples_join({"v": 3000}, {"v": 500})
        assert not analysis.tuples_join({"v": 1200}, {"v": 900})

    def test_no_routable_join(self):
        # Purely dynamic join: nothing to pattern-match.
        query = parse_query(
            "SELECT S.id, T.id FROM S, T WHERE S.u = T.u", name="query0"
        )
        analysis = analyze_query(query)
        assert analysis.routing_predicate is None
        assert analysis.static_join_clauses == []
        assert len(analysis.dynamic_join_clauses) == 1

    def test_node_eligible_missing_attribute_is_false(self):
        analysis = analyze_query(parse_query(QUERY1_SQL, name="query1"))
        assert not analysis.node_eligible("S", {})

    def test_unknown_relation_in_clause_rejected(self):
        query = JoinQuery(
            name="bad",
            source=RelationSpec("S"),
            target=RelationSpec("T"),
            where=Comparison("<", AttributeRef("Z", "id"), Literal(3)),
        )
        with pytest.raises(KeyError):
            analyze_query(query)

    def test_constant_clause_goes_to_both(self):
        query = JoinQuery(
            name="const",
            source=RelationSpec("S"),
            target=RelationSpec("T"),
            where=Comparison("=", Literal(1), Literal(1)),
        )
        analysis = analyze_query(query)
        assert analysis.dynamic_selections["S"]
        assert analysis.dynamic_selections["T"]


class TestJoinQueryValidation:
    def test_window_and_interval_validation(self):
        with pytest.raises(ValueError):
            JoinQuery(name="q", source=RelationSpec("S"), target=RelationSpec("T"),
                      window_size=0)
        with pytest.raises(ValueError):
            JoinQuery(name="q", source=RelationSpec("S"), target=RelationSpec("T"),
                      sample_interval=0)

    def test_alias_clash_rejected(self):
        with pytest.raises(ValueError):
            JoinQuery(name="q", source=RelationSpec("S"), target=RelationSpec("S"))

    def test_alias_helpers(self):
        query = JoinQuery(name="q", source=RelationSpec("S"), target=RelationSpec("T"))
        assert query.opposite_alias("S") == "T"
        assert query.opposite_alias("T") == "S"
        with pytest.raises(KeyError):
            query.opposite_alias("Z")
        assert query.alias_for("S").alias == "S"
        with pytest.raises(KeyError):
            query.alias_for("Z")
        assert query.result_width() == 2

    def test_empty_alias_rejected(self):
        with pytest.raises(ValueError):
            RelationSpec(alias="")
