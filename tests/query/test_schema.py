"""Tests for the sensor relation schema."""

import pytest

from repro.query import SENSOR_SCHEMA, Attribute, RelationSchema
from repro.query.schema import split_static_dynamic


class TestAttribute:
    def test_validation(self):
        with pytest.raises(ValueError):
            Attribute(name="", static=True)
        with pytest.raises(ValueError):
            Attribute(name="x", static=True, kind="blob")


class TestRelationSchema:
    def test_sensor_schema_has_28_attributes(self):
        assert len(SENSOR_SCHEMA) == 28

    def test_static_dynamic_split_matches_paper(self):
        # 18 dynamic readings, 10 static attributes (Appendix B).
        assert len(SENSOR_SCHEMA.dynamic_attributes()) == 18
        assert len(SENSOR_SCHEMA.static_attributes()) == 10

    def test_expected_attributes_present(self):
        for name in ("id", "x", "y", "cid", "rid", "pos", "u", "v", "humidity"):
            assert SENSOR_SCHEMA.has_attribute(name)

    def test_static_flags(self):
        assert SENSOR_SCHEMA.is_static("id")
        assert SENSOR_SCHEMA.is_static("pos")
        assert not SENSOR_SCHEMA.is_static("u")
        assert not SENSOR_SCHEMA.is_static("temperature")

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            SENSOR_SCHEMA.attribute("nonexistent")
        assert not SENSOR_SCHEMA.has_attribute("nonexistent")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema(
                name="bad",
                attributes=[
                    Attribute("a", static=True),
                    Attribute("a", static=False),
                ],
            )

    def test_extended_with(self):
        extended = SENSOR_SCHEMA.extended_with(
            [Attribute("building", static=True)]
        )
        assert extended.has_attribute("building")
        assert len(extended) == 29
        # The original is untouched.
        assert not SENSOR_SCHEMA.has_attribute("building")

    def test_split_static_dynamic_helper(self):
        static, dynamic = split_static_dynamic(SENSOR_SCHEMA, ["id", "u", "cid", "v"])
        assert static == ["id", "cid"]
        assert dynamic == ["u", "v"]

    def test_attribute_names_order(self):
        names = SENSOR_SCHEMA.attribute_names()
        assert len(names) == 28
        assert names[0] == "temperature"
