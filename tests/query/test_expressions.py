"""Tests for the expression AST and evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    And,
    AttributeRef,
    BinaryOp,
    Comparison,
    FunctionCall,
    Literal,
    Not,
    Or,
    evaluate,
    hash16,
)
from repro.query.expressions import (
    TRUE,
    FALSE,
    is_join_predicate,
    references_only_relation,
)


BINDINGS = {"S": {"u": 4, "x": 10, "pos": (0.0, 0.0)}, "T": {"u": 4, "y": 5, "pos": (3.0, 4.0)}}


class TestScalars:
    def test_literal(self):
        assert evaluate(Literal(7), {}) == 7

    def test_attribute_ref(self):
        assert evaluate(AttributeRef("S", "u"), BINDINGS) == 4

    def test_attribute_ref_missing_relation(self):
        with pytest.raises(KeyError):
            evaluate(AttributeRef("Z", "u"), BINDINGS)

    def test_attribute_ref_missing_attribute(self):
        with pytest.raises(KeyError):
            evaluate(AttributeRef("S", "nope"), BINDINGS)

    def test_arithmetic(self):
        expr = BinaryOp("+", AttributeRef("S", "x"), Literal(5))
        assert evaluate(expr, BINDINGS) == 15
        assert evaluate(BinaryOp("%", Literal(7), Literal(3)), {}) == 1
        assert evaluate(BinaryOp("*", Literal(6), Literal(7)), {}) == 42

    def test_invalid_arithmetic_operator(self):
        with pytest.raises(ValueError):
            BinaryOp("**", Literal(1), Literal(2))

    def test_functions(self):
        assert evaluate(FunctionCall("abs", (Literal(-3),)), {}) == 3
        assert evaluate(
            FunctionCall("dist", (AttributeRef("S", "pos"), AttributeRef("T", "pos"))),
            BINDINGS,
        ) == pytest.approx(5.0)
        assert evaluate(FunctionCall("max", (Literal(1), Literal(9))), {}) == 9

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            FunctionCall("frobnicate", (Literal(1),))

    def test_hash16_deterministic_and_bounded(self):
        assert hash16(42) == hash16(42)
        assert hash16(42) != hash16(43)
        for value in range(200):
            assert 0 <= hash16(value) <= 0xFFFF
        assert hash16("abc") == hash16("abc")
        assert hash16(4.0) == hash16(4)


class TestPredicates:
    def test_comparisons(self):
        assert evaluate(Comparison("=", AttributeRef("S", "u"), AttributeRef("T", "u")), BINDINGS)
        assert not evaluate(Comparison("<", Literal(5), Literal(3)), {})
        assert evaluate(Comparison("!=", Literal(5), Literal(3)), {})
        assert evaluate(Comparison(">=", Literal(5), Literal(5)), {})

    def test_invalid_comparison_operator(self):
        with pytest.raises(ValueError):
            Comparison("~", Literal(1), Literal(2))

    def test_negated(self):
        comparison = Comparison("<", Literal(1), Literal(2))
        assert comparison.negated().op == ">="
        assert Comparison("=", Literal(1), Literal(2)).negated().op == "!="

    def test_boolean_connectives(self):
        true_cmp = Comparison("=", Literal(1), Literal(1))
        false_cmp = Comparison("=", Literal(1), Literal(2))
        assert evaluate(And(true_cmp, true_cmp), {})
        assert not evaluate(And(true_cmp, false_cmp), {})
        assert evaluate(Or(false_cmp, true_cmp), {})
        assert not evaluate(Or(false_cmp, false_cmp), {})
        assert evaluate(Not(false_cmp), {})
        assert evaluate(TRUE, {})
        assert not evaluate(FALSE, {})

    def test_and_or_flatten(self):
        a = Comparison("=", Literal(1), Literal(1))
        nested = And(a, And(a, a))
        assert len(nested.operands) == 3
        nested_or = Or(a, Or(a, a))
        assert len(nested_or.operands) == 3

    def test_referenced_attributes(self):
        predicate = And(
            Comparison("=", AttributeRef("S", "u"), AttributeRef("T", "u")),
            Comparison("<", AttributeRef("S", "id"), Literal(25)),
        )
        assert predicate.referenced_attributes() == frozenset(
            {("S", "u"), ("T", "u"), ("S", "id")}
        )
        assert predicate.relations() == frozenset({"S", "T"})

    def test_relation_helpers(self):
        selection = Comparison("<", AttributeRef("S", "id"), Literal(25))
        join = Comparison("=", AttributeRef("S", "u"), AttributeRef("T", "u"))
        assert references_only_relation(selection, "S")
        assert not references_only_relation(join, "S")
        assert is_join_predicate(join)
        assert not is_join_predicate(selection)

    def test_str_representations(self):
        predicate = And(
            Comparison("=", AttributeRef("S", "u"), AttributeRef("T", "u")),
            Not(Comparison("<", AttributeRef("S", "id"), Literal(25))),
        )
        text = str(predicate)
        assert "S.u = T.u" in text
        assert "NOT" in text


class TestProperties:
    @given(st.integers(-(2**15), 2**15), st.integers(-(2**15), 2**15))
    @settings(max_examples=60)
    def test_comparison_semantics_match_python(self, a, b):
        bindings = {"S": {"a": a}, "T": {"b": b}}
        left, right = AttributeRef("S", "a"), AttributeRef("T", "b")
        assert evaluate(Comparison("<", left, right), bindings) == (a < b)
        assert evaluate(Comparison("=", left, right), bindings) == (a == b)
        assert evaluate(Comparison(">=", left, right), bindings) == (a >= b)

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=60)
    def test_hash16_in_range(self, value):
        assert 0 <= hash16(value) <= 0xFFFF
