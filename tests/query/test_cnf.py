"""Tests for CNF conversion."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import And, AttributeRef, Comparison, Literal, Not, Or, to_cnf
from repro.query.cnf import clause_is_disjunction, push_negations
from repro.query.expressions import BoolLiteral


def _cmp(attr, op, value):
    return Comparison(op, AttributeRef("S", attr), Literal(value))


A = _cmp("a", "<", 5)
B = _cmp("b", "=", 1)
C = _cmp("c", ">", 0)


def _evaluate_clauses(clauses, bindings):
    return all(clause.evaluate(bindings) for clause in clauses)


class TestPushNegations:
    def test_double_negation(self):
        assert push_negations(Not(Not(A))) == A

    def test_de_morgan_and(self):
        result = push_negations(Not(And(A, B)))
        assert isinstance(result, Or)
        ops = {str(op) for op in result.operands}
        assert str(A.negated()) in ops
        assert str(B.negated()) in ops

    def test_de_morgan_or(self):
        result = push_negations(Not(Or(A, B)))
        assert isinstance(result, And)

    def test_negated_bool_literal(self):
        assert push_negations(Not(BoolLiteral(True))) == BoolLiteral(False)


class TestToCnf:
    def test_simple_comparison(self):
        assert to_cnf(A) == [A]

    def test_conjunction_splits_into_clauses(self):
        clauses = to_cnf(And(A, B, C))
        assert len(clauses) == 3

    def test_disjunction_is_single_clause(self):
        clauses = to_cnf(Or(A, B))
        assert len(clauses) == 1
        assert clause_is_disjunction(clauses[0])

    def test_distribution(self):
        # A OR (B AND C)  ->  (A OR B) AND (A OR C)
        clauses = to_cnf(Or(A, And(B, C)))
        assert len(clauses) == 2
        assert all(clause_is_disjunction(clause) for clause in clauses)

    def test_nested_structure(self):
        predicate = And(Or(A, And(B, C)), Not(Or(A, B)))
        clauses = to_cnf(predicate)
        assert len(clauses) >= 3


class TestEquivalence:
    """CNF must be logically equivalent to the original predicate."""

    def _all_bindings(self):
        for a, b, c in itertools.product([0, 10], [0, 1], [-1, 1]):
            yield {"S": {"a": a, "b": b, "c": c}}

    @pytest.mark.parametrize(
        "predicate",
        [
            And(A, B),
            Or(A, B),
            Or(A, And(B, C)),
            And(Or(A, B), C),
            Not(And(A, Or(B, C))),
            Or(And(A, B), And(B, C)),
            Not(Or(Not(A), And(B, Not(C)))),
        ],
    )
    def test_cnf_equivalent(self, predicate):
        clauses = to_cnf(predicate)
        for bindings in self._all_bindings():
            assert _evaluate_clauses(clauses, bindings) == predicate.evaluate(bindings)


@st.composite
def predicates(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from([A, B, C]))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(predicates(depth=depth + 1)))
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return And(left, right) if kind == "and" else Or(left, right)


class TestPropertyEquivalence:
    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_random_predicates_equivalent(self, predicate):
        clauses = to_cnf(predicate)
        for a, b, c in itertools.product([0, 10], [0, 1], [-1, 1]):
            bindings = {"S": {"a": a, "b": b, "c": c}}
            assert _evaluate_clauses(clauses, bindings) == predicate.evaluate(bindings)
