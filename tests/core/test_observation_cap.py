"""Satellite: bounded observation state for open-ended service runs."""

import pytest

from repro.core.adaptive import (
    DEFAULT_OBSERVATION_CAP,
    AdaptivePolicy,
    LearningState,
    PairObservation,
)
from repro.core.cost_model import Selectivities


class TestObservationCap:
    def test_counters_stay_bounded_forever(self):
        # Halving at the cap gives every per-cycle-rate-r counter a fixed
        # point of 2 * r * cap just before rollover: bounded, run-length
        # independent state.
        obs = PairObservation(window_size=1, observation_cap=100)
        for _ in range(10_000):
            obs.record_source_tuple()
            obs.record_target_tuple()
            obs.record_results(2)
            obs.record_cycle()
        assert obs.cycles <= 100
        assert obs.n_source <= 2 * 100
        assert obs.n_target <= 2 * 100
        assert obs.n_results <= 4 * 100
        assert obs.rollovers > 50  # first at the cap, then every cap/2 cycles

    def test_rollover_preserves_estimated_rates(self):
        obs = PairObservation(window_size=2, observation_cap=1000)
        for _ in range(999):
            obs.record_source_tuple()
            obs.record_results(1)
            obs.record_cycle()
        before = obs.estimate()
        obs.record_source_tuple()
        obs.record_results(1)
        obs.record_cycle()  # triggers the halving rollover
        assert obs.rollovers == 1
        after = obs.estimate()
        sel_before = before.selectivities
        sel_after = after.selectivities
        assert sel_after.sigma_s == pytest.approx(sel_before.sigma_s, rel=0.01)
        assert sel_after.sigma_st == pytest.approx(sel_before.sigma_st, rel=0.01)

    def test_default_cap_never_fires_at_figure_scale(self):
        obs = PairObservation(window_size=1)
        for _ in range(5_000):  # far beyond any figure run's cycle count
            obs.record_cycle()
        assert obs.rollovers == 0
        assert obs.cycles == 5_000
        assert obs.observation_cap == DEFAULT_OBSERVATION_CAP

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            PairObservation(window_size=1, observation_cap=1)

    def test_learning_state_threads_cap_through(self):
        state = LearningState(
            current=Selectivities(0.5, 0.5, 0.2),
            window_size=1,
            observation_cap=50,
        )
        assert state.observation.observation_cap == 50
        policy = AdaptivePolicy(check_interval=7, reset_interval=10_000_000)
        for cycle in range(1, 500):
            state.observation.record_cycle()
            state.maybe_update(policy, cycle)
        assert state.observation.cycles < 50
        assert state.observation.rollovers > 0
