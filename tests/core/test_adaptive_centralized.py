"""Tests for adaptive selectivity learning and the centralized baseline."""

import pytest

from repro.core import (
    AdaptivePolicy,
    PairObservation,
    Selectivities,
    centralized_initiation,
    optimal_pair_placements,
)
from repro.core.adaptive import LearningState
from repro.core.centralized import (
    CentralizedOptimizer,
    distributed_initiation_latency,
    placement_cost_with_global_distances,
)
from repro.network import NetworkSimulator
from repro.network.topology import random_topology


class TestPairObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            PairObservation(window_size=0)

    def test_estimate_none_before_observation(self):
        assert PairObservation(window_size=3).estimate() is None

    def test_estimates_match_formulas(self):
        obs = PairObservation(window_size=3)
        for _ in range(10):
            obs.record_cycle()
        obs.record_source_tuple(5)
        obs.record_target_tuple(10)
        obs.record_results(9)
        estimate = obs.estimate()
        assert estimate.selectivities.sigma_s == pytest.approx(0.5)
        assert estimate.selectivities.sigma_t == pytest.approx(1.0)
        # sigma_st = N_st / (w * (N_s + N_t)) = 9 / (3 * 15)
        assert estimate.selectivities.sigma_st == pytest.approx(0.2)
        assert estimate.observed_cycles == 10

    def test_estimates_clamped_to_one(self):
        obs = PairObservation(window_size=1)
        obs.record_cycle()
        obs.record_source_tuple(5)
        obs.record_results(100)
        estimate = obs.estimate()
        assert estimate.selectivities.sigma_s == 1.0
        assert estimate.selectivities.sigma_st == 1.0

    def test_reset(self):
        obs = PairObservation(window_size=1)
        obs.record_cycle()
        obs.record_source_tuple()
        obs.reset()
        assert obs.estimate() is None


class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(divergence_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptivePolicy(check_interval=0)

    def test_check_and_reset_cycles(self):
        policy = AdaptivePolicy(check_interval=10, reset_interval=50)
        assert policy.is_check_cycle(10)
        assert not policy.is_check_cycle(11)
        assert not policy.is_check_cycle(0)
        assert policy.is_reset_cycle(50)
        assert not policy.is_reset_cycle(49)

    def _estimate(self, s, t, st, cycles=20):
        obs = PairObservation(window_size=1)
        for _ in range(cycles):
            obs.record_cycle()
        obs.record_source_tuple(int(s * cycles))
        obs.record_target_tuple(int(t * cycles))
        received = int(s * cycles) + int(t * cycles)
        obs.record_results(int(st * received))
        return obs.estimate()

    def test_trigger_on_divergence(self):
        policy = AdaptivePolicy(divergence_threshold=0.33, min_cycles=5)
        current = Selectivities(0.1, 1.0, 0.2)
        diverged = self._estimate(1.0, 0.1, 0.2)
        assert policy.should_reoptimize(current, diverged)

    def test_no_trigger_when_close(self):
        policy = AdaptivePolicy(divergence_threshold=0.33, min_cycles=5)
        current = Selectivities(0.5, 0.5, 0.2)
        close = self._estimate(0.5, 0.5, 0.2)
        assert not policy.should_reoptimize(current, close)

    def test_no_trigger_without_confidence(self):
        policy = AdaptivePolicy(min_cycles=50)
        current = Selectivities(0.1, 1.0, 0.2)
        estimate = self._estimate(1.0, 0.1, 0.9, cycles=10)
        assert not policy.should_reoptimize(current, estimate)

    def test_learning_state_updates(self):
        policy = AdaptivePolicy(divergence_threshold=0.33, check_interval=5,
                                reset_interval=20, min_cycles=3)
        state = LearningState(current=Selectivities(0.1, 0.1, 0.0), window_size=1)
        updated = None
        for cycle in range(1, 11):
            state.observation.record_cycle()
            state.observation.record_source_tuple()
            state.observation.record_target_tuple()
            state.observation.record_results(1)
            result = state.maybe_update(policy, cycle)
            updated = result or updated
        assert updated is not None
        assert state.reoptimizations >= 1
        assert state.current.sigma_s > 0.5


class TestCentralized:
    @pytest.fixture(scope="class")
    def topo(self):
        return random_topology(num_nodes=50, average_degree=7, seed=13)

    def test_centralized_congests_base(self, topo):
        sim = NetworkSimulator(topo)
        report = centralized_initiation(topo, involved_nodes=topo.node_ids[:10],
                                        simulator=sim)
        assert report.collection_traffic > 0
        assert report.distribution_traffic > 0
        assert report.traffic_at_base > 0
        assert report.total_traffic == pytest.approx(
            report.collection_traffic + report.distribution_traffic
        )

    def test_centralized_latency_exceeds_distributed(self, topo):
        """Figure 6b: centralized initiation has several times the latency."""
        report = centralized_initiation(topo, involved_nodes=topo.node_ids[:10])
        ids = topo.node_ids
        pairs = [(ids[i], ids[-1 - i]) for i in range(10)]
        distributed = distributed_initiation_latency(topo, pairs)
        assert report.latency_cycles > 2 * distributed

    def test_optimal_placement_is_lower_bound(self, topo):
        sel = Selectivities(1.0, 0.5, 0.1)
        pairs = [(topo.node_ids[2], topo.node_ids[-3])]
        optimal = optimal_pair_placements(topo, pairs, sel, window_size=2)
        join_node, cost = optimal[pairs[0]]
        # No other node beats the optimum.
        for candidate in topo.node_ids[::5]:
            other = placement_cost_with_global_distances(
                topo, pairs[0][0], pairs[0][1], candidate, sel, 2
            )
            assert cost <= other + 1e-9

    def test_optimal_skips_dead_nodes(self, topo):
        sel = Selectivities(1.0, 1.0, 0.0)
        optimizer = CentralizedOptimizer(topo.copy())
        source, target = topo.node_ids[2], topo.node_ids[-3]
        join_node, _ = optimizer.optimal_join_node(source, target, sel, 1)
        optimizer.topology.nodes[join_node].fail()
        new_join, _ = optimizer.optimal_join_node(source, target, sel, 1)
        assert new_join != join_node

    def test_unreachable_placement_cost_infinite(self, topo):
        broken = topo.copy()
        victim = next(n for n in broken.node_ids if n != broken.base_id)
        for other in list(broken.adjacency[victim]):
            broken.adjacency[other].discard(victim)
        broken.adjacency[victim] = set()
        cost = placement_cost_with_global_distances(
            broken, victim, broken.base_id, broken.base_id,
            Selectivities(1, 1, 0), 1,
        )
        assert cost == float("inf")
