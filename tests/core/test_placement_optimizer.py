"""Tests for join-node placement, the pairwise optimizer and GROUPOPT."""

import pytest

from repro.core import (
    GroupOptimizer,
    PairwiseOptimizer,
    Selectivities,
    build_groups,
    optimal_pair_placements,
    place_join_node,
)
from repro.core.group_opt import reconcile_decisions
from repro.core.placement import best_placement, nomination_traffic
from repro.network import NetworkSimulator
from repro.network.topology import random_topology
from repro.routing import MultiTreeSubstrate
from repro.routing.multitree import PairPath


@pytest.fixture(scope="module")
def topo():
    return random_topology(num_nodes=60, average_degree=7, seed=21)


@pytest.fixture(scope="module")
def substrate(topo):
    return MultiTreeSubstrate(topo, num_trees=2)


def _pair_path(substrate, source, target):
    path = substrate.best_route(source, target)
    hops = [substrate.hops_to_base(n) for n in path]
    return PairPath(source=source, target=target, path=path, hops_to_base=hops)


class TestPlacement:
    def test_join_node_on_path_or_base(self, topo, substrate):
        pair = _pair_path(substrate, topo.node_ids[3], topo.node_ids[-4])
        decision = place_join_node(
            pair, Selectivities(0.5, 0.5, 0.1), 3,
            substrate.path_to_base, topo.base_id,
        )
        assert decision.join_node in pair.path or decision.at_base
        assert decision.source_to_join[0] == pair.source
        assert decision.target_to_join[0] == pair.target
        assert decision.source_to_join[-1] == decision.join_node
        assert decision.target_to_join[-1] == decision.join_node
        assert decision.join_to_base[-1] == topo.base_id or decision.at_base

    def test_never_worse_than_base(self, topo, substrate):
        """Explicit minimization: chosen cost <= cost of joining at the base."""
        selectivity_grid = [
            Selectivities(0.1, 1.0, 0.2),
            Selectivities(0.5, 0.5, 0.05),
            Selectivities(1.0, 0.1, 0.2),
            Selectivities(1.0, 1.0, 1.0),
        ]
        ids = topo.node_ids
        for sel in selectivity_grid:
            for offset in range(5):
                pair = _pair_path(substrate, ids[2 + offset], ids[-3 - offset])
                decision = place_join_node(
                    pair, sel, 3, substrate.path_to_base, topo.base_id
                )
                assert decision.expected_cost <= decision.base_cost + 1e-9

    def test_asymmetric_selectivities_pull_join_node(self, topo, substrate):
        """The join node sits nearer the chattier producer's partner:
        with sigma_s tiny and sigma_t high, t's data should travel few hops."""
        pair = _pair_path(substrate, topo.node_ids[4], topo.node_ids[-5])
        skewed_s = place_join_node(
            pair, Selectivities(0.05, 1.0, 0.0), 1, substrate.path_to_base, topo.base_id
        )
        skewed_t = place_join_node(
            pair, Selectivities(1.0, 0.05, 0.0), 1, substrate.path_to_base, topo.base_id
        )
        if not skewed_s.at_base and not skewed_t.at_base:
            assert skewed_s.d_tj <= skewed_t.d_tj

    def test_missing_annotation_rejected(self, topo, substrate):
        path = substrate.best_route(topo.node_ids[1], topo.node_ids[-2])
        bare = PairPath(
            source=path[0], target=path[-1], path=path, hops_to_base=[]
        )
        with pytest.raises(ValueError):
            place_join_node(bare, Selectivities(1, 1, 0), 1,
                            substrate.path_to_base, topo.base_id)

    def test_best_placement_picks_min_over_paths(self, topo, substrate):
        source, target = topo.node_ids[3], topo.node_ids[-4]
        candidates = [
            _pair_path(substrate, source, target),
        ]
        # Add a deliberately longer candidate (via the base).
        long_path = (substrate.path_to_base(source)
                     + list(reversed(substrate.path_to_base(target)))[1:])
        seen = set()
        long_path = [n for n in long_path if not (n in seen or seen.add(n))]
        candidates.append(PairPath(
            source=source, target=target, path=long_path,
            hops_to_base=[substrate.hops_to_base(n) for n in long_path],
        ))
        best = best_placement(candidates, Selectivities(0.5, 0.5, 0.1), 1,
                              substrate.path_to_base, topo.base_id)
        individual = [
            place_join_node(c, Selectivities(0.5, 0.5, 0.1), 1,
                            substrate.path_to_base, topo.base_id).expected_cost
            for c in candidates
        ]
        assert best.expected_cost == pytest.approx(min(individual))

    def test_best_placement_requires_candidates(self, topo, substrate):
        with pytest.raises(ValueError):
            best_placement([], Selectivities(1, 1, 0), 1,
                           substrate.path_to_base, topo.base_id)

    def test_nomination_traffic_charged(self, topo, substrate):
        sim = NetworkSimulator(topo)
        pair = _pair_path(substrate, topo.node_ids[3], topo.node_ids[-4])
        decision = place_join_node(pair, Selectivities(0.5, 0.5, 0.1), 3,
                                   substrate.path_to_base, topo.base_id)
        nomination_traffic(sim, decision)
        assert sim.stats.total() > 0


class TestAgainstGlobalOptimum:
    def test_distributed_placement_close_to_optimal(self, topo, substrate):
        """Figure 7: decentralized placement is within a few percent of the
        optimum computed with global knowledge (here: on the same paths the
        cost ordering must agree within a small factor)."""
        sel = Selectivities(1.0, 0.0, 0.0)
        ids = topo.node_ids
        pairs = [(ids[3 + i], ids[-4 - i]) for i in range(10)]
        optimal = optimal_pair_placements(topo, pairs, sel, window_size=1)
        total_optimal = sum(cost for _, cost in optimal.values())
        total_distributed = 0.0
        for source, target in pairs:
            pair = _pair_path(substrate, source, target)
            decision = place_join_node(pair, sel, 1, substrate.path_to_base, topo.base_id)
            total_distributed += decision.expected_cost
        assert total_distributed >= total_optimal - 1e-9
        # The multi-tree paths are close to shortest paths, so the gap is small.
        assert total_distributed <= total_optimal * 1.25 + 1e-9


class TestGroups:
    def test_build_groups_connected_components(self):
        groups = build_groups([(1, 10), (2, 10), (3, 11), (5, 12)])
        assert len(groups) == 3
        sizes = sorted(len(g.pairs) for g in groups)
        assert sizes == [1, 1, 2]
        big = max(groups, key=lambda g: len(g.pairs))
        assert big.source_members == {1, 2}
        assert big.target_members == {10}
        assert big.coordinator == 1

    def test_group_optimizer_prefers_base_for_shared_heavy_joins(self, topo, substrate):
        """When one s joins many t's with high sigma_st, shipping everything to
        the base once beats producing results at a far-away join node."""
        ids = [n for n in topo.node_ids if n != topo.base_id]
        source = max(ids, key=substrate.hops_to_base)
        targets = sorted(ids, key=substrate.hops_to_base, reverse=True)[1:5]
        pairs = [(source, t) for t in targets]
        sel = {p: Selectivities(1.0, 1.0, 1.0) for p in pairs}
        optimizer = PairwiseOptimizer(substrate, window_size=3)
        candidate_paths = {p: [_pair_path(substrate, *p)] for p in pairs}
        plan = optimizer.optimize_pairs(candidate_paths, sel)
        plan = optimizer.apply_group_optimization(plan, sel)
        assert plan.group_decisions
        decision = plan.group_decisions[0]
        if decision.join_at_base:
            assert all(plan.decision_for(p).at_base for p in pairs)

    def test_group_optimizer_keeps_innet_for_rare_joins(self, topo, substrate):
        """With sigma_st ~ 0 and producers far from the base, in-network wins."""
        ids = [n for n in topo.node_ids if n != topo.base_id]
        far = sorted(ids, key=substrate.hops_to_base, reverse=True)
        pairs = [(far[0], far[1]), (far[0], far[2])]
        sel = {p: Selectivities(1.0, 1.0, 0.0) for p in pairs}
        optimizer = PairwiseOptimizer(substrate, window_size=1)
        candidate_paths = {p: [_pair_path(substrate, *p)] for p in pairs}
        plan = optimizer.optimize_pairs(candidate_paths, sel)
        plan = optimizer.apply_group_optimization(plan, sel)
        assert plan.group_decisions[0].use_innet
        assert not all(plan.decision_for(p).at_base for p in pairs)

    def test_group_traffic_charged(self, topo, substrate):
        sim = NetworkSimulator(topo)
        ids = [n for n in topo.node_ids if n != topo.base_id]
        pairs = [(ids[0], ids[10]), (ids[0], ids[11])]
        sel = {p: Selectivities(0.5, 0.5, 0.2) for p in pairs}
        optimizer = PairwiseOptimizer(substrate, window_size=1)
        candidate_paths = {p: [_pair_path(substrate, *p)] for p in pairs}
        plan = optimizer.optimize_pairs(candidate_paths, sel, simulator=sim)
        traffic_after_pairs = sim.stats.total()
        optimizer.apply_group_optimization(plan, sel, simulator=sim)
        assert sim.stats.total() > traffic_after_pairs

    def test_reconcile_decisions(self):
        groups = build_groups([(1, 10), (2, 10)])
        group = groups[0]
        older = __import__("repro.core.group_opt", fromlist=["GroupDecision"]).GroupDecision(
            group=group, use_innet=True, total_delta=-1.0, sequence=1
        )
        newer = __import__("repro.core.group_opt", fromlist=["GroupDecision"]).GroupDecision(
            group=group, use_innet=False, total_delta=2.0, sequence=2
        )
        assert reconcile_decisions(older, newer) is newer
        assert reconcile_decisions(newer, older) is newer


class TestJoinPlan:
    def test_plan_bookkeeping(self, topo, substrate):
        ids = [n for n in topo.node_ids if n != topo.base_id]
        pairs = [(ids[0], ids[10]), (ids[1], ids[11])]
        sel = {p: Selectivities(0.5, 0.5, 0.1) for p in pairs}
        optimizer = PairwiseOptimizer(substrate, window_size=2)
        candidate_paths = {p: [_pair_path(substrate, *p)] for p in pairs}
        plan = optimizer.optimize_pairs(candidate_paths, sel)
        assert plan.pairs() == sorted(pairs)
        assert plan.expected_cost_per_cycle() > 0
        join_nodes = plan.join_nodes()
        assert join_nodes
        listed = [p for j in join_nodes for p in plan.pairs_at(j)]
        assert sorted(listed) == sorted(pairs)
        assert 0.0 <= plan.fraction_at_base() <= 1.0

    def test_reoptimize_pair_updates_assignment(self, topo, substrate):
        ids = [n for n in topo.node_ids if n != topo.base_id]
        pair = (ids[0], ids[10])
        sel = {pair: Selectivities(0.1, 1.0, 0.05)}
        optimizer = PairwiseOptimizer(substrate, window_size=3)
        candidate_paths = {pair: [_pair_path(substrate, *pair)]}
        plan = optimizer.optimize_pairs(candidate_paths, sel)
        before = plan.decision_for(pair)
        after = optimizer.reoptimize_pair(
            plan, pair, Selectivities(1.0, 0.1, 0.05)
        )
        assert plan.decision_for(pair) is after
        assert after.expected_cost <= after.base_cost + 1e-9
        # The decision may or may not move, but it must stay on the path/base.
        assert after.join_node in candidate_paths[pair][0].path or after.at_base

    def test_optimizer_window_validation(self, substrate):
        with pytest.raises(ValueError):
            PairwiseOptimizer(substrate, window_size=0)
