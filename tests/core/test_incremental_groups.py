"""Satellite: incremental grouping equals from-scratch GROUPOPT.

Property-style coverage over seeded churn traces: any interleaving of
``add_query``/``remove_query`` must leave the incremental optimizer with
exactly the groups (and, given identical inputs, the same decisions) that a
from-scratch :func:`build_groups` derives over the final live query set.
"""

import numpy as np
import pytest

from repro.core.cost_model import Selectivities
from repro.core.group_opt import GroupOptimizer, build_groups
from repro.core.placement import PlacementDecision


def _optimizer() -> GroupOptimizer:
    return GroupOptimizer(
        hops_to_base=lambda node: 1 + node % 7,
        route_between=lambda a, b: [a, b],
    )


def _query_pairs(rng: np.random.Generator, universe: int):
    """A small random bipartite pair set drawn from a shared id universe."""
    count = int(rng.integers(1, 5))
    pairs = []
    for _ in range(count):
        source = int(rng.integers(0, universe))
        target = int(rng.integers(universe, 2 * universe))
        pairs.append((source, target))
    return pairs


def _partition(groups):
    """A group list as a comparable set of pair-sets."""
    return {frozenset(group.pairs) for group in groups}


def _placement_for(pair):
    source, target = pair
    join = min(source, target)
    return PlacementDecision(
        source=source,
        target=target,
        join_node=join,
        at_base=False,
        expected_cost=1.0,
        base_cost=2.0,
        source_to_join=list(range(source, join - 1, -1)) or [source],
        target_to_join=list(range(target, join - 1, -1)) or [target],
        join_to_base=[join, 0],
    )


class TestIncrementalGrouping:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_churn_trace_matches_from_scratch(self, seed):
        rng = np.random.default_rng(seed)
        optimizer = _optimizer()
        live = {}
        next_query = 0
        for _ in range(60):
            if live and rng.random() < 0.4:
                victim = sorted(live)[int(rng.integers(0, len(live)))]
                optimizer.remove_query(victim)
                del live[victim]
            else:
                pairs = _query_pairs(rng, universe=12)
                optimizer.add_query(next_query, pairs)
                live[next_query] = pairs
                next_query += 1
            distinct = list(
                dict.fromkeys(p for pairs in live.values() for p in pairs)
            )
            expected = _partition(build_groups(distinct))
            assert _partition(optimizer.groups()) == expected

    def test_empty_after_all_queries_leave(self):
        optimizer = _optimizer()
        optimizer.add_query("a", [(1, 10), (2, 10)])
        optimizer.add_query("b", [(2, 11)])
        optimizer.remove_query("a")
        optimizer.remove_query("b")
        assert optimizer.groups() == []
        assert optimizer.registered_queries() == []

    def test_merge_and_split(self):
        optimizer = _optimizer()
        changed = optimizer.add_query("a", [(1, 10)])
        assert len(changed) == 1
        # Shares source 1 -> both pairs merge into one group.
        changed = optimizer.add_query("b", [(1, 11)])
        assert len(changed) == 1
        assert _partition(optimizer.groups()) == {
            frozenset({(1, 10), (1, 11)})
        }
        # Removing b splits the group back down to a's pair.
        changed = optimizer.remove_query("b")
        assert _partition(optimizer.groups()) == {frozenset({(1, 10)})}
        assert [g.pairs for g in changed] == [[(1, 10)]]

    def test_untouched_groups_keep_identity_and_decisions(self):
        optimizer = _optimizer()
        optimizer.add_query("stable", [(5, 15)])
        stable_group = optimizer.groups()[0]
        selectivities = Selectivities(0.5, 0.5, 0.2)
        decision = optimizer.decide_group(
            stable_group,
            {(5, 15): _placement_for((5, 15))},
            selectivities,
            window_size=2,
        )
        optimizer.record_decision(decision)
        # Disjoint churn must not touch the stable group or its decision.
        optimizer.add_query("other", [(1, 10), (2, 10)])
        optimizer.remove_query("other")
        assert optimizer.groups()[0] is stable_group
        assert optimizer.decision_for(stable_group.group_id) is decision

    def test_shared_pair_keeps_group_alive(self):
        optimizer = _optimizer()
        optimizer.add_query("a", [(3, 12)])
        changed = optimizer.add_query("b", [(3, 12)])
        assert changed == []  # identical pair set: structure unchanged
        assert optimizer.remove_query("a") == []  # still referenced by b
        assert _partition(optimizer.groups()) == {frozenset({(3, 12)})}
        optimizer.remove_query("b")
        assert optimizer.groups() == []

    @pytest.mark.parametrize("seed", [11, 23])
    def test_decisions_match_from_scratch(self, seed):
        """After churn, per-group decisions equal the from-scratch ones."""
        rng = np.random.default_rng(seed)
        optimizer = _optimizer()
        live = {}
        for index in range(20):
            if live and rng.random() < 0.35:
                victim = sorted(live)[int(rng.integers(0, len(live)))]
                optimizer.remove_query(victim)
                del live[victim]
            else:
                pairs = _query_pairs(rng, universe=10)
                optimizer.add_query(index, pairs)
                live[index] = pairs
        distinct = list(
            dict.fromkeys(p for pairs in live.values() for p in pairs)
        )
        placements = {pair: _placement_for(pair) for pair in distinct}
        selectivities = Selectivities(0.4, 0.6, 0.1)
        scratch = _optimizer()
        expected = {
            frozenset(group.pairs): scratch.decide_group(
                group, placements, selectivities, window_size=2
            )
            for group in build_groups(distinct)
        }
        for group in optimizer.groups():
            decision = optimizer.decide_group(
                group, placements, selectivities, window_size=2
            )
            reference = expected[frozenset(group.pairs)]
            assert decision.use_innet == reference.use_innet
            assert decision.total_delta == pytest.approx(reference.total_delta)
            assert decision.per_producer_delta == pytest.approx(
                reference.per_producer_delta
            )
