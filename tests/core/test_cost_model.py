"""Tests for the Appendix D / Table 3 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Selectivities,
    grouped_base_cost,
    innet_pair_cost,
    naive_cost,
    pair_at_base_cost,
    through_base_cost,
    ght_cost,
)
from repro.core.cost_model import (
    best_join_point_index,
    group_cost_difference,
    innet_cost,
    relative_error,
    through_base_pair_cost,
)

sel = st.floats(0.0, 1.0)


class TestSelectivities:
    def test_validation(self):
        with pytest.raises(ValueError):
            Selectivities(1.5, 0.5, 0.1)
        with pytest.raises(ValueError):
            Selectivities(0.5, -0.1, 0.1)

    def test_helpers(self):
        s = Selectivities(0.1, 0.9, 0.2)
        assert s.sigma_for(True) == 0.1
        assert s.sigma_for(False) == 0.9
        assert s.swapped() == Selectivities(0.9, 0.1, 0.2)
        assert Selectivities.uniform(0.5, 0.2).sigma_s == 0.5


class TestPairwiseExpressions:
    def test_innet_pair_cost_formula(self):
        s = Selectivities(0.5, 0.25, 0.2)
        cost = innet_pair_cost(s, w=3, d_sj=2, d_tj=4, d_jr=5)
        expected = 0.5 * 2 + 0.25 * 4 + (0.5 + 0.25) * 3 * 0.2 * 5
        assert cost == pytest.approx(expected)

    def test_pair_at_base_cost(self):
        s = Selectivities(0.5, 0.25, 0.2)
        assert pair_at_base_cost(s, d_sr=4, d_tr=6) == pytest.approx(0.5 * 4 + 0.25 * 6)

    def test_through_base_pair_cost(self):
        s = Selectivities(0.5, 0.25, 0.2)
        cost = through_base_pair_cost(s, w=1, d_sr=4, d_tr=6)
        expected = 0.5 * 4 + (0.5 + (0.75) * 1 * 0.2) * 6
        assert cost == pytest.approx(expected)

    def test_join_node_sits_near_the_chattier_producer(self):
        """If sigma_t >> sigma_s the join node should sit near t (so t's
        frequent data travels few hops), and vice versa."""
        w = 3
        hops_to_base = [5, 5, 5, 5, 5]  # equal distance to base along the path
        near_t = best_join_point_index(Selectivities(0.1, 1.0, 0.0), w, hops_to_base)
        near_s = best_join_point_index(Selectivities(1.0, 0.1, 0.0), w, hops_to_base)
        assert near_t == len(hops_to_base) - 1
        assert near_s == 0

    def test_join_point_pulled_toward_base_when_join_selectivity_high(self):
        # Path of 5 nodes where the middle node is closest to the base.
        hops_to_base = [4, 3, 1, 3, 4]
        index = best_join_point_index(Selectivities(0.5, 0.5, 1.0), w=3,
                                      path_hops_to_base=hops_to_base)
        assert index == 2

    def test_best_join_point_requires_path(self):
        with pytest.raises(ValueError):
            best_join_point_index(Selectivities(1, 1, 0), 1, [])


class TestTable3:
    S_HOPS = [2.0, 3.0, 4.0]
    T_HOPS = [1.0, 5.0]

    def test_naive(self):
        s = Selectivities(0.5, 1.0, 0.2)
        costs = naive_cost(s, self.S_HOPS, self.T_HOPS, w=3)
        assert costs.initiation == 0.0
        assert costs.computation_per_cycle == pytest.approx(0.5 * 9 + 1.0 * 6)
        assert costs.storage_tuples == pytest.approx(3 * (0.5 * 3 + 1.0 * 2))
        assert costs.total(10) == pytest.approx(10 * costs.computation_per_cycle)

    def test_base_prefilter_reduces_computation(self):
        s = Selectivities(0.5, 1.0, 0.2)
        naive = naive_cost(s, self.S_HOPS, self.T_HOPS, w=3)
        base = grouped_base_cost(s, self.S_HOPS, self.T_HOPS, w=3,
                                 phi_s_t=0.5, phi_t_s=0.5)
        assert base.computation_per_cycle < naive.computation_per_cycle
        assert base.initiation == pytest.approx(2 * naive.computation_per_cycle)
        # For long enough runs Base beats Naive despite the initiation cost.
        assert base.total(100) < naive.total(100)

    def test_through_base(self):
        s = Selectivities(0.5, 0.5, 0.2)
        costs = through_base_cost(s, self.S_HOPS, self.T_HOPS, w=1)
        expected = 0.5 * 9 + (0.5 * 3 / 2 + 1.0 * 1 * 0.2) * 6
        assert costs.computation_per_cycle == pytest.approx(expected)
        assert costs.storage_tuples == 3.0

    def test_through_base_empty_targets(self):
        s = Selectivities(0.5, 0.5, 0.2)
        costs = through_base_cost(s, self.S_HOPS, [], w=1)
        assert costs.computation_per_cycle == pytest.approx(0.5 * 9)

    def test_ght_and_innet_share_computation_shape(self):
        s = Selectivities(0.5, 0.5, 0.1)
        ght = ght_cost(s, [3.0], [4.0], [6.0], w=2)
        inn = innet_cost(s, [1.0], [2.0], [3.0], w=2, pair_discovery_hops=[3.0])
        # Same formula, different distances: shorter paths give lower cost.
        assert inn.computation_per_cycle < ght.computation_per_cycle
        assert inn.initiation == 3.0

    def test_group_cost_difference_sign(self):
        # Join node on the path, base far away: in-network should win
        # (negative delta) when join selectivity is low.
        delta = group_cost_difference(
            sigma_p=1.0, sigma_st=0.0, w=3,
            join_node_distances={7: 1.0},
            pairs_per_join_node={7: 1},
            join_node_base_distances={7: 5.0},
            d_pr=6.0,
        )
        assert delta < 0
        # High join selectivity and many pairs at the join node push the
        # result traffic up and favour the base.
        delta_high = group_cost_difference(
            sigma_p=1.0, sigma_st=1.0, w=3,
            join_node_distances={7: 1.0},
            pairs_per_join_node={7: 4},
            join_node_base_distances={7: 5.0},
            d_pr=6.0,
        )
        assert delta_high > 0

    def test_relative_error(self):
        assert relative_error(0.5, 1.0) == pytest.approx(0.5)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.5, 0.0) == float("inf")


class TestProperties:
    @given(sel, sel, sel, st.integers(1, 5), st.integers(0, 10),
           st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=80)
    def test_innet_cost_non_negative_and_monotone_in_distance(
        self, ss, tt, stt, w, d_sj, d_tj, d_jr
    ):
        s = Selectivities(ss, tt, stt)
        cost = innet_pair_cost(s, w, d_sj, d_tj, d_jr)
        assert cost >= 0.0
        assert innet_pair_cost(s, w, d_sj + 1, d_tj, d_jr) >= cost

    @given(sel, sel, sel, st.integers(1, 5),
           st.lists(st.integers(0, 12), min_size=2, max_size=10))
    @settings(max_examples=80)
    def test_best_join_point_is_argmin(self, ss, tt, stt, w, hops):
        s = Selectivities(ss, tt, stt)
        index = best_join_point_index(s, w, hops)
        costs = [
            innet_pair_cost(s, w, i, len(hops) - 1 - i, hops[i])
            for i in range(len(hops))
        ]
        assert costs[index] == pytest.approx(min(costs))
