"""Tests for the execution engine and its report."""

import pytest

from repro.core import Selectivities
from repro.joins import InnetJoin, InnetVariant, JoinExecutor, NaiveJoin
from repro.network.links import lossy_links
from repro.network.traffic import TrafficAccounting
from repro.workloads import build_query1

from tests.joins.conftest import make_workload


class TestExecutor:
    def test_negative_cycles_rejected(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        executor = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                                default_selectivities)
        with pytest.raises(ValueError):
            executor.run(-1)

    def test_zero_cycles_runs_initiation_only(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        strategy = InnetJoin(InnetVariant.basic())
        executor = JoinExecutor(query1, topo_small.copy(), data_source, strategy,
                                default_selectivities)
        report = executor.run(0)
        assert report.cycles == 0
        assert report.initiation_traffic > 0
        assert report.computation_traffic == pytest.approx(0.0)
        assert report.results_produced == 0

    def test_initiate_idempotent(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        executor = JoinExecutor(query1, topo_small.copy(), data_source,
                                InnetJoin(InnetVariant.basic()), default_selectivities)
        first = executor.initiate()
        second = executor.initiate()
        assert first == second

    def test_report_consistency(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        executor = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                                default_selectivities)
        report = executor.run(15)
        assert report.total_traffic == pytest.approx(
            report.initiation_traffic + report.computation_traffic
        )
        assert report.results_delivered <= report.results_produced
        assert len(report.top_loaded_nodes) <= 15
        as_dict = report.as_dict()
        assert as_dict["algorithm"] == "naive"
        assert as_dict["total_traffic"] == report.total_traffic

    def test_traffic_grows_with_cycles(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        short = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                             default_selectivities).run(5)
        long = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                            default_selectivities).run(25)
        assert long.total_traffic > short.total_traffic
        assert long.results_produced > short.results_produced

    def test_message_accounting_mode(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        bytes_report = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                                    default_selectivities).run(5)
        msg_report = JoinExecutor(
            query1, topo_small.copy(), data_source, NaiveJoin(), default_selectivities,
            accounting=TrafficAccounting.MESSAGES,
        ).run(5)
        # Messages are far fewer than bytes for the same workload.
        assert msg_report.total_traffic < bytes_report.total_traffic
        assert msg_report.results_produced == bytes_report.results_produced

    def test_lossy_links_drop_messages(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        lossless = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                                default_selectivities).run(10)
        lossy = JoinExecutor(
            query1, topo_small.copy(), data_source, NaiveJoin(), default_selectivities,
            link_model=lossy_links(0.3, seed=1, max_retransmissions=0),
        ).run(10)
        assert lossy.messages_dropped > 0
        assert lossy.results_produced <= lossless.results_produced

    def test_retransmissions_increase_traffic(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        lossless = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                                default_selectivities).run(10)
        retransmitting = JoinExecutor(
            query1, topo_small.copy(), data_source, NaiveJoin(), default_selectivities,
            link_model=lossy_links(0.3, seed=1, max_retransmissions=5),
        ).run(10)
        assert retransmitting.total_traffic > lossless.total_traffic

    def test_charge_tree_construction_adds_initiation(
        self, topo_small, query1, default_selectivities
    ):
        data_source = make_workload(topo_small, query1, default_selectivities)
        without = JoinExecutor(query1, topo_small.copy(), data_source, NaiveJoin(),
                               default_selectivities).run(1)
        with_flood = JoinExecutor(
            query1, topo_small.copy(), data_source, NaiveJoin(), default_selectivities,
            charge_tree_construction=True,
        ).run(1)
        assert with_flood.initiation_traffic > without.initiation_traffic

    def test_selectivity_provider_callable(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        calls = []

        def provider(pair):
            calls.append(pair)
            return default_selectivities

        executor = JoinExecutor(query1, topo_small.copy(), data_source,
                                InnetJoin(InnetVariant.basic()), provider)
        executor.run(2)
        assert calls
