"""The shared-substrate stepping engine and the step_cycle refactor."""

import pytest

from repro.joins import JoinExecutor
from repro.joins.grouped_base import BaseJoin
from repro.joins.innet import InnetJoin, InnetVariant
from repro.joins.stepping import SharedSubstrateEngine
from repro.query.parser import parse_query
from tests.joins.conftest import make_workload


def _overlap_query(name, s_limit, t_floor, window=2):
    return parse_query(
        f"SELECT S.id, T.id FROM S, T [windowsize={window} sampleinterval=100] "
        f"WHERE S.id < {s_limit} AND T.id > {t_floor} "
        f"AND S.adc0 < 500 AND T.adc0 < 500 AND S.u = T.u",
        name=name,
    )


class TestRunIdempotentInitiation:
    def test_run_twice_charges_initiation_once(
        self, topo_small, query1, default_selectivities
    ):
        data_source = make_workload(topo_small, query1, default_selectivities)
        executor = JoinExecutor(
            query1, topo_small.copy(), data_source,
            InnetJoin(InnetVariant.cm()), default_selectivities,
        )
        first = executor.run(5)
        assert first.initiation_traffic > 0
        second = executor.run(0)
        assert second.initiation_traffic == first.initiation_traffic
        # The second run added no initiation traffic on top of the first.
        assert second.total_traffic == first.total_traffic

    def test_run_cycles_then_run_is_one_initiation(
        self, topo_small, query1, default_selectivities
    ):
        data_source = make_workload(topo_small, query1, default_selectivities)
        reference = JoinExecutor(
            query1, topo_small.copy(), data_source, BaseJoin(),
            default_selectivities,
        )
        expected = reference.run(10)

        split = JoinExecutor(
            query1, topo_small.copy(), data_source, BaseJoin(),
            default_selectivities,
        )
        split.run_cycles(0, 4)
        split.run_cycles(4, 6)
        report = split.report(10)
        assert report.initiation_traffic == expected.initiation_traffic
        assert report.total_traffic == expected.total_traffic


class TestStepCycle:
    def test_manual_stepping_equals_run(
        self, topo_small, query1, default_selectivities
    ):
        data_source = make_workload(topo_small, query1, default_selectivities)
        reference = JoinExecutor(
            query1, topo_small.copy(), data_source,
            InnetJoin(InnetVariant.cmg()), default_selectivities,
        )
        expected = reference.run(12)

        stepped = JoinExecutor(
            query1, topo_small.copy(), data_source,
            InnetJoin(InnetVariant.cmg()), default_selectivities,
        )
        for cycle in range(12):
            stepped.step_cycle(cycle)
        report = stepped.report(12)
        assert report.total_traffic == expected.total_traffic
        assert report.base_traffic == expected.base_traffic
        assert report.results_delivered == expected.results_delivered


class TestSharedSubstrateEngine:
    def test_single_query_matches_batch_executor(
        self, topo_small, query1, default_selectivities
    ):
        data_source = make_workload(topo_small, query1, default_selectivities)
        reference = JoinExecutor(
            query1, topo_small.copy(), data_source,
            InnetJoin(InnetVariant.cmg()), default_selectivities,
            batch_cycles=False,
        )
        expected = reference.run(15)

        engine = SharedSubstrateEngine(
            topo_small.copy(), data_source, default_selectivities,
            share_shipments=False,
        )
        session = engine.attach(query1, InnetJoin(InnetVariant.cmg()))
        engine.run_cycles(15)
        assert engine.simulator.stats.total() == expected.total_traffic
        assert session.initiation_traffic == expected.initiation_traffic
        assert engine.reoptimizations == 0  # initiate-time decisions adopted

    def test_identical_queries_share_shipments(
        self, topo_small, default_selectivities
    ):
        query_a = _overlap_query("qa", 25, 50)
        query_b = _overlap_query("qb", 25, 50)
        data_source = make_workload(topo_small, query_a, default_selectivities)
        engine = SharedSubstrateEngine(
            topo_small.copy(), data_source, default_selectivities,
        )
        engine.attach(query_a, BaseJoin())
        engine.attach(query_b, BaseJoin())
        engine.run_cycles(10)
        stats = engine.stats()
        assert stats["shared_savings_units"] > 0
        assert stats["deduped_shipments"] > 0
        assert (
            stats["independent_traffic_estimate"]
            == stats["total_traffic"] + stats["shared_savings_units"]
        )

    def test_overlapping_queries_reoptimize_groups(
        self, topo_small, default_selectivities
    ):
        query_a = _overlap_query("qa", 25, 50)
        # Wider bands: fresh pairs that merge into qa's group via shared
        # endpoints, forcing an engine-level cross-query re-decision.
        query_b = _overlap_query("qb", 30, 45)
        data_source = make_workload(topo_small, query_a, default_selectivities)
        engine = SharedSubstrateEngine(
            topo_small.copy(), data_source, default_selectivities,
        )
        engine.attach(query_a, InnetJoin(InnetVariant.cmg()))
        before = engine.simulator.stats.total()
        engine.attach(query_b, InnetJoin(InnetVariant.cmg()))
        assert engine.reoptimizations > 0
        assert engine.reopt_latency.count == engine.reoptimizations
        assert engine.reopt_latency.quantile("p50") > 0
        # Re-deciding merged groups charged control traffic on the substrate.
        assert engine.simulator.stats.total() > before

    def test_detach_stops_execution_and_reoptimizes(
        self, topo_small, default_selectivities
    ):
        query_a = _overlap_query("qa", 25, 50)
        query_b = _overlap_query("qb", 20, 55)
        data_source = make_workload(topo_small, query_a, default_selectivities)
        engine = SharedSubstrateEngine(
            topo_small.copy(), data_source, default_selectivities,
        )
        session_a = engine.attach(query_a, InnetJoin(InnetVariant.cmg()))
        engine.attach(query_b, InnetJoin(InnetVariant.cmg()))
        engine.run_cycles(5)
        reopts_before = engine.reoptimizations
        engine.detach(session_a.query_id)
        assert not session_a.active
        assert engine.active_count == 1
        assert engine.reoptimizations > reopts_before  # groups split back
        produced_at_detach = session_a.strategy.results.produced
        engine.run_cycles(5)
        assert session_a.strategy.results.produced == produced_at_detach
        with pytest.raises(KeyError):
            engine.detach(session_a.query_id)

    def test_sessions_report(self, topo_small, query1, default_selectivities):
        data_source = make_workload(topo_small, query1, default_selectivities)
        engine = SharedSubstrateEngine(
            topo_small.copy(), data_source, default_selectivities,
        )
        session = engine.attach(query1, BaseJoin())
        facts = session.describe()
        assert facts["query_id"] == session.query_id
        assert facts["active"] is True
        assert engine.sessions(active_only=True) == [session]
        stats = engine.stats()
        assert stats["active_queries"] == 1
        assert stats["cycle"] == 0
