"""Cross-cutting integration tests: mesh mode, Intel workload, determinism."""

import pytest

from repro.core import Selectivities
from repro.joins import GHTJoin, InnetJoin, InnetVariant, JoinExecutor, NaiveJoin
from repro.network.traffic import TrafficAccounting
from repro.workloads.intel import intel_query3_workload

from tests.joins.conftest import make_workload, run_strategy


class TestMeshMode:
    """Appendix F: the same strategies over an 802.11 mesh, counted in messages."""

    def test_mesh_accounting_preserves_orderings(self, topo100, query1):
        sel = Selectivities(0.5, 0.5, 0.05)
        reports = {}
        for name, strategy in (
            ("naive", NaiveJoin()),
            ("dht", GHTJoin(use_dht=True)),
            ("innet-cmg", InnetJoin(InnetVariant.cmg())),
        ):
            reports[name] = run_strategy(
                topo100, query1, strategy, sel, cycles=30,
                accounting=TrafficAccounting.MESSAGES,
            )
        assert reports["innet-cmg"].total_traffic < reports["dht"].total_traffic
        # All strategies compute the same join.
        assert (reports["naive"].results_produced
                == reports["innet-cmg"].results_produced)

    def test_message_counts_are_integers(self, topo_small, query1, default_selectivities):
        report = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities,
                              cycles=5, accounting=TrafficAccounting.MESSAGES)
        assert report.total_traffic == int(report.total_traffic)


class TestIntelWorkloadIntegration:
    def test_learning_starts_at_base_and_migrates(self):
        """Figure 13's mechanism: with 100% initial estimates every pair joins
        at the base; learned estimates move join nodes into the network."""
        topology, data_source, query = intel_query3_workload(seed=4)
        pessimistic = Selectivities(1.0, 1.0, 1.0)
        strategy = InnetJoin(InnetVariant.learn())
        executor = JoinExecutor(query, topology.copy(), data_source, strategy, pessimistic)
        executor.initiate()
        assert strategy.plan.fraction_at_base() == pytest.approx(1.0)
        executor.run(60)
        assert strategy.reoptimizations > 0
        assert strategy.plan.fraction_at_base() < 1.0

    def test_trace_replay_is_deterministic(self):
        """Two strategies replaying the same Intel trace see identical data,
        so they produce identical join results (regression test for the
        stateful-noise bug)."""
        topology, data_source, query = intel_query3_workload(seed=5)
        sel = Selectivities(1.0, 1.0, 0.2)
        first = JoinExecutor(query, topology.copy(), data_source, NaiveJoin(), sel).run(20)
        second = JoinExecutor(query, topology.copy(), data_source,
                              InnetJoin(InnetVariant.cmg()), sel).run(20)
        assert first.results_produced == second.results_produced


class TestDeterminism:
    def test_same_seed_same_report(self, topo_small, query1, default_selectivities):
        first = run_strategy(topo_small, query1, InnetJoin(InnetVariant.cmpg()),
                             default_selectivities, cycles=15, seed=9)
        second = run_strategy(topo_small, query1, InnetJoin(InnetVariant.cmpg()),
                              default_selectivities, cycles=15, seed=9)
        assert first.total_traffic == second.total_traffic
        assert first.results_produced == second.results_produced
        assert first.base_traffic == second.base_traffic

    def test_different_seed_different_data(self, topo_small, query1, default_selectivities):
        first = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities,
                             cycles=15, seed=1)
        second = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities,
                              cycles=15, seed=2)
        assert first.results_produced != second.results_produced or (
            first.total_traffic != second.total_traffic
        )
