"""Tests for the Innet strategy, its variants, learning and failure handling."""

import pytest

from repro.core import Selectivities
from repro.core.adaptive import AdaptivePolicy
from repro.joins import InnetJoin, InnetVariant, JoinExecutor, NaiveJoin
from repro.network.failures import FailureInjector
from repro.workloads import build_query0

from tests.joins.conftest import make_workload, run_strategy


class TestVariantLabels:
    def test_labels_match_paper_names(self):
        assert InnetVariant.basic().label == "innet"
        assert InnetVariant.cm().label == "innet-cm"
        assert InnetVariant.cmg().label == "innet-cmg"
        assert InnetVariant.cmp().label == "innet-cmp"
        assert InnetVariant.cmpg().label == "innet-cmpg"
        assert InnetVariant.learn().label == "innet-cmpg-learn"
        assert InnetVariant.learn(InnetVariant.basic()).label.endswith("-learn")


class TestPlacementAndPlan:
    def test_plan_covers_all_statically_joining_pairs(
        self, topo_small, query1, default_selectivities
    ):
        strategy = InnetJoin(InnetVariant.basic())
        run_strategy(topo_small, query1, strategy, default_selectivities, cycles=5)
        assert strategy.plan.pairs()
        for source, target in strategy.plan.pairs():
            s_attrs = topo_small.nodes[source].static_attributes
            t_attrs = topo_small.nodes[target].static_attributes
            assert s_attrs["x"] == t_attrs["y"] + 5

    def test_join_node_on_path_or_base(self, topo_small, query1, default_selectivities):
        strategy = InnetJoin(InnetVariant.basic())
        run_strategy(topo_small, query1, strategy, default_selectivities, cycles=2)
        for pair in strategy.plan.pairs():
            decision = strategy.plan.decision_for(pair)
            assert decision.expected_cost <= decision.base_cost + 1e-9

    def test_query0_single_pair(self, topo_small, default_selectivities):
        ids = [n for n in topo_small.node_ids if n != topo_small.base_id]
        query0 = build_query0(source_id=ids[0], target_id=ids[-1])
        strategy = InnetJoin(InnetVariant.basic())
        report = run_strategy(topo_small, query0, strategy, default_selectivities)
        assert strategy.plan.pairs() == [(ids[0], ids[-1])]
        assert report.join_nodes_used == 1


class TestVariantAblation:
    def test_multicast_never_increases_traffic(self, topo100, query2):
        sel = Selectivities(0.5, 0.5, 0.05)
        plain = run_strategy(topo100, query2, InnetJoin(InnetVariant.basic()), sel,
                             cycles=30)
        cm = run_strategy(topo100, query2, InnetJoin(InnetVariant.cm()), sel,
                          cycles=30)
        assert cm.total_traffic <= plain.total_traffic * 1.02

    def test_cmpg_not_worse_than_cmg(self, topo100, query2):
        """Figure 9: Innet-cmpg is never worse than Innet-cmg."""
        sel = Selectivities(0.5, 0.5, 0.1)
        cmg = run_strategy(topo100, query2, InnetJoin(InnetVariant.cmg()), sel,
                           cycles=30)
        cmpg = run_strategy(topo100, query2, InnetJoin(InnetVariant.cmpg()), sel,
                            cycles=30)
        assert cmpg.total_traffic <= cmg.total_traffic * 1.02

    def test_group_optimization_bounds_cost_by_base(
        self, topo100, query1, default_selectivities
    ):
        """GROUPOPT falls back to the base station when sharing makes the
        grouped join cheaper, so cmg cannot be much worse than Base-at-100-cycles."""
        cmg = run_strategy(topo100, query1, InnetJoin(InnetVariant.cmg()),
                           default_selectivities, cycles=30)
        naive = run_strategy(topo100, query1, NaiveJoin(),
                             default_selectivities, cycles=30)
        assert cmg.total_traffic < naive.total_traffic

    def test_all_variants_same_results(self, topo_small, query1, default_selectivities):
        counts = set()
        for variant in (InnetVariant.basic(), InnetVariant.cm(), InnetVariant.cmg(),
                        InnetVariant.cmpg(), InnetVariant.learn()):
            report = run_strategy(topo_small, query1, InnetJoin(variant),
                                  default_selectivities)
            counts.add(report.results_produced)
        assert len(counts) == 1


class TestAdaptiveLearning:
    def test_learning_recovers_from_bad_estimates(self, topo100, query1):
        """Figure 10: with wrong initial estimates, learning reduces traffic."""
        actual = Selectivities(0.1, 1.0, 0.05)
        wrong = Selectivities(1.0, 0.1, 0.05)
        policy = AdaptivePolicy(check_interval=10, min_cycles=10)
        without = run_strategy(
            topo100, query1,
            InnetJoin(InnetVariant.cmpg()), wrong, cycles=120,
            data_selectivities=actual,
        )
        with_learning = run_strategy(
            topo100, query1,
            InnetJoin(InnetVariant.learn(), adaptive_policy=policy), wrong, cycles=120,
            data_selectivities=actual,
        )
        assert with_learning.reoptimizations > 0
        assert with_learning.total_traffic < without.total_traffic

    def test_learning_overhead_small_with_correct_estimates(self, topo100, query1):
        """Figure 10: with correct estimates the learning overhead is small."""
        actual = Selectivities(0.5, 0.5, 0.2)
        plain = run_strategy(topo100, query1, InnetJoin(InnetVariant.cmpg()),
                             actual, cycles=60)
        learn = run_strategy(topo100, query1,
                             InnetJoin(InnetVariant.learn()), actual, cycles=60)
        assert learn.total_traffic <= plain.total_traffic * 1.35

    def test_window_transferred_on_migration(self, topo_small, query1):
        """Join-node migration ships the buffered window (Section 6)."""
        wrong = Selectivities(1.0, 0.1, 0.2)
        policy = AdaptivePolicy(check_interval=10, min_cycles=10)
        strategy = InnetJoin(InnetVariant.learn(InnetVariant.basic()),
                             adaptive_policy=policy)
        report = run_strategy(topo_small, query1, strategy, wrong, cycles=60)
        if report.reoptimizations:
            kinds = report.traffic_by_kind
            # Window transfers only happen when a join node actually moves;
            # nominations always accompany re-optimization.
            assert kinds.get("nominate", 0) > 0


class TestFailureHandling:
    def _query0_with_plan(self, topo, selectivities):
        ids = sorted(n for n in topo.node_ids if n != topo.base_id)
        query = build_query0(source_id=ids[2], target_id=ids[-3])
        data_source = make_workload(topo, query, selectivities)
        scout = InnetJoin(InnetVariant.basic())
        JoinExecutor(query, topo.copy(), data_source, scout, selectivities).initiate()
        return query, data_source, scout.plan

    def test_join_node_failure_recovers_at_base(self, topo_small):
        sel = Selectivities(1.0, 1.0, 0.2)
        query, data_source, plan = self._query0_with_plan(topo_small, sel)
        pair = plan.pairs()[0]
        join_node = plan.decision_for(pair).join_node
        if join_node == topo_small.base_id:
            pytest.skip("join node placed at the base; nothing to fail")
        injector = FailureInjector()
        injector.schedule(join_node, sampling_cycle=10)
        strategy = InnetJoin(InnetVariant.basic())
        executor = JoinExecutor(
            query, topo_small.copy(), data_source, strategy, sel,
            failure_injector=injector,
        )
        report = executor.run(40)
        no_failure = JoinExecutor(
            query, topo_small.copy(), data_source, InnetJoin(InnetVariant.basic()), sel
        ).run(40)
        # The query keeps producing results after the failure ...
        assert report.results_produced >= 0.6 * no_failure.results_produced
        # ... the pair now joins at the base ...
        assert strategy.plan.decision_for(pair).at_base
        # ... and the recovery shows up as extra result delay (Figure 14a).
        assert report.average_result_delay_cycles >= no_failure.average_result_delay_cycles

    def test_producer_failure_stops_its_results(self, topo_small, query1):
        sel = Selectivities(1.0, 1.0, 0.2)
        strategy = InnetJoin(InnetVariant.basic())
        data_source = make_workload(topo_small, query1, sel)
        scout = InnetJoin(InnetVariant.basic())
        JoinExecutor(query1, topo_small.copy(), data_source, scout, sel).initiate()
        victim = scout.plan.pairs()[0][0]
        injector = FailureInjector()
        injector.schedule(victim, sampling_cycle=3)
        executor = JoinExecutor(
            query1, topo_small.copy(), data_source, strategy, sel,
            failure_injector=injector,
        )
        report = executor.run(10)
        assert report.results_produced >= 0
        assert not executor.topology.nodes[victim].alive
