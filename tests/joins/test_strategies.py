"""Tests for the individual join strategies.

These tests run small end-to-end executions (20 cycles, 50-100 nodes) and
check result correctness, traffic accounting and the qualitative properties
the paper relies on.
"""

import pytest

from repro.core import Selectivities
from repro.joins import (
    BaseJoin,
    GHTJoin,
    InnetJoin,
    InnetVariant,
    JoinExecutor,
    NaiveJoin,
    ThroughBaseJoin,
)
from repro.workloads import build_query0, build_query3
from repro.workloads.intel import intel_query3_workload

from tests.joins.conftest import make_workload, run_strategy

ALL_STRATEGIES = [
    NaiveJoin,
    BaseJoin,
    GHTJoin,
    ThroughBaseJoin,
    lambda: InnetJoin(InnetVariant.basic()),
    lambda: InnetJoin(InnetVariant.cm()),
    lambda: InnetJoin(InnetVariant.cmg()),
    lambda: InnetJoin(InnetVariant.cmpg()),
]


class TestAllStrategiesAgree:
    @pytest.mark.parametrize("make_strategy", ALL_STRATEGIES)
    def test_query1_runs_and_produces_results(
        self, topo_small, query1, default_selectivities, make_strategy
    ):
        report = run_strategy(topo_small, query1, make_strategy(), default_selectivities)
        assert report.total_traffic > 0
        assert report.results_produced > 0
        assert report.base_traffic > 0
        assert report.max_node_load > 0
        assert report.cycles == 20

    def test_every_strategy_produces_the_same_join_results(
        self, topo_small, query1, default_selectivities
    ):
        """All algorithms compute the same windowed join, so (with loss-free
        links) they must produce essentially the same number of results.
        Through-the-base buffers target readings slightly differently within a
        cycle, so a 2 % tolerance absorbs the window-boundary effects."""
        counts = {}
        for make_strategy in ALL_STRATEGIES:
            strategy = make_strategy()
            report = run_strategy(topo_small, query1, strategy, default_selectivities)
            counts[strategy.name] = report.results_produced
        lowest, highest = min(counts.values()), max(counts.values())
        assert highest > 0
        assert (highest - lowest) <= 0.02 * highest, counts
        # Strategies that join at a single buffer location agree exactly.
        exact = {name: count for name, count in counts.items() if name != "yang07"}
        assert len(set(exact.values())) == 1, exact

    def test_query2_strategies_agree(self, topo_small, query2, default_selectivities):
        counts = set()
        for make_strategy in (NaiveJoin, BaseJoin,
                              lambda: InnetJoin(InnetVariant.cmpg())):
            report = run_strategy(topo_small, query2, make_strategy(), default_selectivities)
            counts.add(report.results_produced)
        assert len(counts) == 1


class TestNaiveAndBase:
    def test_naive_has_no_initiation(self, topo_small, query1, default_selectivities):
        report = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities)
        assert report.initiation_traffic == 0.0
        assert report.join_nodes_used == 1

    def test_base_prefilters_producers(self, topo_small, query1, default_selectivities):
        naive = NaiveJoin()
        base = BaseJoin()
        run_strategy(topo_small, query1, naive, default_selectivities)
        run_strategy(topo_small, query1, base, default_selectivities)
        assert len(base.participating_producers("S")) <= len(
            naive.participating_producers("S")
        )
        # Query 1's x = y + 5 clause eliminates many S producers.
        assert len(base.participating_producers("S")) < len(
            naive.participating_producers("S")
        )

    def test_base_computation_cheaper_than_naive(
        self, topo_small, query1, default_selectivities
    ):
        naive = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities)
        base = run_strategy(topo_small, query1, BaseJoin(), default_selectivities)
        assert base.computation_traffic < naive.computation_traffic
        assert base.initiation_traffic > 0

    def test_base_station_concentration(self, topo_small, query1, default_selectivities):
        """With grouped-at-base strategies the base is the most loaded node."""
        report = run_strategy(topo_small, query1, NaiveJoin(), default_selectivities)
        top_node, _ = report.top_loaded_nodes[0]
        assert top_node == topo_small.base_id


class TestGHT:
    def test_requires_static_join_key(self, topo_small, default_selectivities):
        query0 = build_query0(source_id=topo_small.node_ids[1],
                              target_id=topo_small.node_ids[-1])
        with pytest.raises(ValueError):
            run_strategy(topo_small, query0, GHTJoin(), default_selectivities)

    def test_uses_multiple_join_nodes(self, topo_small, query1, default_selectivities):
        strategy = GHTJoin()
        run_strategy(topo_small, query1, strategy, default_selectivities)
        assert strategy.join_nodes_used() >= 2

    def test_dht_variant_label(self, topo_small, query1, default_selectivities):
        strategy = GHTJoin(use_dht=True)
        report = run_strategy(topo_small, query1, strategy, default_selectivities)
        assert report.algorithm == "dht"
        assert report.results_produced > 0

    def test_ght_total_traffic_higher_than_innet_cmg(
        self, topo100, query1, default_selectivities
    ):
        """GHT routes over long hash paths; the paper finds it always poor."""
        ght = run_strategy(topo100, query1, GHTJoin(), default_selectivities, cycles=30)
        cmg = run_strategy(topo100, query1, InnetJoin(InnetVariant.cmg()),
                           default_selectivities, cycles=30)
        assert ght.total_traffic > cmg.total_traffic

    def test_region_query_ght_grouping(self):
        topo, data_source, query = intel_query3_workload(seed=3)
        strategy = GHTJoin()
        executor = JoinExecutor(
            query, topo.copy(), data_source, strategy, Selectivities(1.0, 1.0, 0.2)
        )
        report = executor.run(5)
        assert report.results_produced > 0


class TestThroughBase:
    def test_produces_results_and_traffic(self, topo_small, query1, default_selectivities):
        report = run_strategy(topo_small, query1, ThroughBaseJoin(), default_selectivities)
        assert report.results_produced > 0
        assert report.initiation_traffic == 0.0

    def test_queue_overflow_with_bounded_queues(self, topo100, query1):
        """Section 4.2: Yang+07's routing queues overflow on the synthetic
        workload when per-node queues are bounded."""
        sel = Selectivities(1.0, 1.0, 0.2)
        bounded = run_strategy(topo100, query1, ThroughBaseJoin(), sel,
                               cycles=10, queue_capacity=8)
        unbounded = run_strategy(topo100, query1, ThroughBaseJoin(), sel, cycles=10)
        assert bounded.queue_drops > 0
        assert unbounded.queue_drops == 0
        assert bounded.results_produced < unbounded.results_produced

    def test_heavier_than_base_near_the_sink(self, topo_small, query1, default_selectivities):
        yang = run_strategy(topo_small, query1, ThroughBaseJoin(), default_selectivities)
        base = run_strategy(topo_small, query1, BaseJoin(), default_selectivities)
        assert yang.total_traffic > base.total_traffic
