"""Tests for multicast trees and path collapsing."""

import pytest

from repro.joins import build_multicast_tree, collapse_paths
from repro.joins.multicast import tree_cost, unicast_cost
from repro.network.topology import grid_topology


class TestMulticastTree:
    def test_shared_prefix_counted_once(self):
        tree = build_multicast_tree(1, [[1, 2, 3, 4], [1, 2, 3, 5]])
        assert tree.edge_count == 4  # 1-2, 2-3, 3-4, 3-5
        assert unicast_cost([[1, 2, 3, 4], [1, 2, 3, 5]]) == 6
        assert tree.destinations == {4, 5}
        assert tree_cost(tree) < unicast_cost([[1, 2, 3, 4], [1, 2, 3, 5]])

    def test_paths_must_start_at_root(self):
        with pytest.raises(ValueError):
            build_multicast_tree(1, [[2, 3]])

    def test_path_from_root(self):
        tree = build_multicast_tree(1, [[1, 2, 3], [1, 4]])
        assert tree.path_from_root(3) == [1, 2, 3]
        assert tree.path_from_root(1) == [1]
        with pytest.raises(KeyError):
            tree.path_from_root(99)

    def test_internal_state_nodes(self):
        tree = build_multicast_tree(1, [[1, 2, 3], [1, 2, 4]])
        assert tree.internal_state_nodes() == [2]
        assert tree.maintenance_bytes() > 0

    def test_empty_paths_ignored(self):
        tree = build_multicast_tree(1, [[], [1, 2]])
        assert tree.edge_count == 1

    def test_disjoint_branches(self):
        tree = build_multicast_tree(0, [[0, 1, 2], [0, 3, 4], [0, 5]])
        assert tree.edge_count == 5
        assert tree.nodes == {0, 1, 2, 3, 4, 5}


class TestPathCollapse:
    def test_collapse_reduces_tree_cost_when_paths_cross(self):
        topo = grid_topology(num_nodes=25)  # 5x5 grid, ids row-major
        # Two paths from node 0: one along the bottom row, one along the left
        # column then right; nodes 6 and 1 are adjacent (diagonal 8-connectivity).
        path_a = [0, 1, 2, 3, 4]
        path_b = [0, 5, 10, 11, 12]
        collapsed = collapse_paths(topo, 0, [path_a, path_b])
        before = tree_cost(build_multicast_tree(0, [path_a, path_b]))
        after = tree_cost(build_multicast_tree(0, collapsed))
        assert after <= before
        # Destinations are preserved.
        assert {p[-1] for p in collapsed} == {4, 12}

    def test_collapse_single_path_is_noop(self):
        topo = grid_topology(num_nodes=25)
        assert collapse_paths(topo, 0, [[0, 1, 2]]) == [[0, 1, 2]]

    def test_collapse_never_increases_cost(self):
        topo = grid_topology(num_nodes=36)
        paths = [[0, 1, 2, 3], [0, 6, 12, 13], [0, 7, 14, 21]]
        collapsed = collapse_paths(topo, 0, paths)
        before = tree_cost(build_multicast_tree(0, paths))
        after = tree_cost(build_multicast_tree(0, collapsed))
        assert after <= before
        assert {p[-1] for p in collapsed} == {p[-1] for p in paths}
