"""Shared fixtures for join-strategy tests."""

import pytest

from repro.core import Selectivities
from repro.joins import JoinExecutor
from repro.network.topology import random_topology
from repro.query.analysis import analyze_query
from repro.workloads import (
    SyntheticDataSource,
    assign_table1_attributes,
    build_query1,
    build_query2,
    build_send_probability_map,
)


@pytest.fixture(scope="session")
def topo100():
    topo = random_topology(num_nodes=100, average_degree=7, seed=1)
    assign_table1_attributes(topo, seed=1)
    return topo


@pytest.fixture(scope="session")
def topo_small():
    topo = random_topology(num_nodes=80, average_degree=7, seed=2)
    assign_table1_attributes(topo, seed=2)
    return topo


def make_workload(topo, query, selectivities, seed=3):
    """Build the data source realizing the requested selectivities."""
    analysis = analyze_query(query)
    eligible_s = [
        n for n in topo.node_ids
        if analysis.node_eligible("S", topo.nodes[n].static_attributes)
    ]
    eligible_t = [
        n for n in topo.node_ids
        if analysis.node_eligible("T", topo.nodes[n].static_attributes)
    ]
    send_map = build_send_probability_map(
        eligible_s, eligible_t, selectivities.sigma_s, selectivities.sigma_t
    )
    return SyntheticDataSource(
        sigma_st=selectivities.sigma_st,
        send_probability=0.0,
        seed=seed,
        per_node_send_probability=send_map,
    )


def run_strategy(topo, query, strategy, selectivities, cycles=20, seed=3,
                 data_selectivities=None, **kwargs):
    """Run one strategy on a fresh topology copy and return the report.

    ``selectivities`` are what the optimizer assumes; ``data_selectivities``
    (defaulting to the same) are what the generated data actually follows --
    pass different values to reproduce the wrong-estimate experiments.
    """
    data_source = make_workload(
        topo, query, data_selectivities or selectivities, seed=seed
    )
    executor = JoinExecutor(
        query, topo.copy(), data_source, strategy, selectivities, seed=seed, **kwargs
    )
    return executor.run(cycles)


@pytest.fixture(scope="session")
def default_selectivities():
    return Selectivities(0.5, 0.5, 0.2)


@pytest.fixture(scope="session")
def query1():
    return build_query1()


@pytest.fixture(scope="session")
def query2():
    return build_query2()
