"""Smoke-scale integration tests for every figure-reproduction function.

Each test runs the experiment at the tiny ``smoke`` scale and checks the
structural properties the paper's figure relies on (who is compared, which
columns exist, basic sanity of the trend) without asserting exact magnitudes.
"""

import pytest

from repro.experiments import figures_adaptive as adaptive
from repro.experiments import figures_joins as joins
from repro.experiments import figures_substrate as substrate
from repro.experiments.harness import SCALES

SMOKE = SCALES["smoke"]


class TestJoinFigures:
    def test_fig02_structure(self):
        rows = joins.fig02_query1_traffic(
            scale=SMOKE, ratios=["1/2:1/2"], join_selectivities=[0.2]
        )
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"naive", "base", "ght", "innet", "innet-cmg", "innet-cmpg"}
        assert all(row["total_traffic_kb"] > 0 for row in rows)
        assert all(row["base_traffic_kb"] > 0 for row in rows)

    def test_fig03_structure(self):
        rows = joins.fig03_query2_traffic(
            scale=SMOKE, ratios=["1/10:1"], join_selectivities=[0.1]
        )
        assert len(rows) == 6
        naive = next(r for r in rows if r["algorithm"] == "naive")
        ght = next(r for r in rows if r["algorithm"] == "ght")
        assert ght["total_traffic_kb"] > 0 and naive["total_traffic_kb"] > 0

    def test_fig04_true_estimate_is_competitive(self):
        rows = joins.fig04_costmodel_query0(
            scale=SMOKE,
            true_ratios=["1/10:1"],
            estimated_ratios=["1/10:1", "1:1/10"],
        )
        assert len(rows) == 2
        true_row = next(r for r in rows if r["is_true_estimate"])
        other_row = next(r for r in rows if not r["is_true_estimate"])
        # Query 0's single pair: optimizing for the true ratio is never worse.
        assert true_row["total_traffic_kb"] <= other_row["total_traffic_kb"] * 1.05

    def test_fig05_ranks_descend(self):
        rows = joins.fig05_load_distribution(scale=SMOKE, algorithms=["naive", "innet-cmg"])
        naive_rows = [r for r in rows if r["algorithm"] == "naive"]
        loads = [r["load_kb"] for r in naive_rows]
        assert loads == sorted(loads, reverse=True)

    def test_fig06_centralized_worse_at_base_and_latency(self):
        rows = joins.fig06_centralized_vs_distributed(scale=SMOKE)
        centralized = next(r for r in rows if r["scheme"] == "centralized")
        distributed = next(r for r in rows if r["scheme"] == "distributed")
        assert centralized["traffic_at_base_kb"] > distributed["traffic_at_base_kb"]
        assert centralized["latency_cycles"] > distributed["latency_cycles"]

    def test_fig07_distributed_close_to_optimal(self):
        rows = joins.fig07_optimal_vs_distributed(scale=SMOKE, num_pairs=8)
        assert {row["topology"] for row in rows} == {
            "dense", "medium", "moderate", "sparse", "grid"
        }
        for row in rows:
            assert row["distributed_cost"] >= row["optimal_cost"] - 1e-9
            if row["workload"] == "paper(1,0,0)":
                # The paper's workload: the optimizer matches the optimum.
                assert row["overhead_percent"] <= 5.0
            else:
                # Symmetric variant: tree paths may not contain the global
                # optimum, but the gap stays bounded.
                assert row["overhead_percent"] <= 60.0

    def test_fig08_contains_both_queries(self):
        rows = joins.fig08_mpo_costmodel(
            scale=SMOKE, true_ratios=["1/2:1/2"], estimated_ratios=["1/2:1/2"]
        )
        assert {row["query"] for row in rows} == {"query1", "query2"}

    def test_fig09a_traffic_grows_with_duration(self):
        rows = joins.fig09a_method_vs_duration(
            scale=SMOKE, algorithms=["naive", "innet-cmg"], durations=[5, 20]
        )
        naive = {r["cycles"]: r["total_traffic_kb"] for r in rows if r["algorithm"] == "naive"}
        assert naive[20] > naive[5]

    def test_fig09b_mpo_variants(self):
        rows = joins.fig09b_mpo_vs_join_selectivity(
            scale=SMOKE, join_selectivities=[0.2], cycles=15
        )
        assert {r["algorithm"] for r in rows} == {"innet", "innet-cm", "innet-cmg",
                                                  "innet-cmpg"}
        plain = next(r for r in rows if r["algorithm"] == "innet")
        cm = next(r for r in rows if r["algorithm"] == "innet-cm")
        cmg = next(r for r in rows if r["algorithm"] == "innet-cmg")
        cmpg = next(r for r in rows if r["algorithm"] == "innet-cmpg")
        # Multicast sharing is a pure win over per-pair unicast; the grouped
        # variants add initiation traffic that only pays off on longer runs
        # (Figure 9a), so here we only require they stay in the same ballpark.
        assert cm["total_traffic_kb"] <= plain["total_traffic_kb"] * 1.05
        assert cmpg["total_traffic_kb"] <= cmg["total_traffic_kb"] * 1.05


class TestAdaptiveFigures:
    def test_fig10_gain_for_wrong_estimates(self):
        rows = adaptive.fig10_learning_gain(
            scale=SMOKE, queries=["query1"],
            true_ratios=["1/10:1"], estimated_ratios=["1/10:1", "1:1/10"],
        )
        assert len(rows) == 2
        for row in rows:
            assert row["no_learning_kb"] > 0
            assert row["learning_kb"] > 0

    def test_fig11_duration_rows(self):
        rows = adaptive.fig11_learning_duration(scale=SMOKE, durations=[10, 20])
        assert {row["cycles"] for row in rows} == {10, 20}

    def test_fig12a_settings(self):
        rows = adaptive.fig12a_spatial_skew(scale=SMOKE, queries=["query1"])
        settings = {row["setting"] for row in rows}
        assert settings == {"Sel1", "Sel2", "Full knowledge", "Sel1 learn", "Sel2 learn"}

    def test_fig12b_settings(self):
        rows = adaptive.fig12b_temporal_drift(scale=SMOKE, queries=["query1"])
        settings = {row["setting"] for row in rows}
        assert "Full knowledge" in settings
        assert "Sel1 learn" in settings

    def test_fig13_intel_orderings(self):
        rows = adaptive.fig13_intel_learning(scale=SMOKE, cycles=15)
        by_setting = {row["setting"]: row for row in rows}
        assert set(by_setting) == {
            "yang07", "ght_gpsr", "naive_base", "innet_full_knowledge", "innet_learn",
        }
        # GHT/GPSR routes over hash locations: the most traffic (log-scale bar).
        assert by_setting["ght_gpsr"]["total_traffic_kb"] == max(
            row["total_traffic_kb"] for row in rows
        )
        assert by_setting["innet_full_knowledge"]["total_traffic_kb"] <= (
            by_setting["naive_base"]["total_traffic_kb"] * 1.05
        )

    def test_fig14_failure_increases_delay(self):
        rows = adaptive.fig14_failure(scale=SMOKE, join_selectivities=(0.2,))
        by_setting = {row["setting"]: row for row in rows}
        assert by_setting["with_failure"]["delay_cycles"] >= (
            by_setting["no_failure"]["delay_cycles"]
        )


class TestSubstrateFigures:
    def test_fig16_more_trees_shorter_paths(self):
        rows = substrate.fig16_path_quality_mote(scale=SMOKE, num_pairs=40)
        for topology in {row["topology"] for row in rows}:
            subset = {row["scheme"]: row for row in rows if row["topology"] == topology}
            assert subset["3-tree"]["avg_path_length"] <= subset["1-tree"]["avg_path_length"]
            assert subset["full-graph"]["avg_path_length"] <= subset["3-tree"]["avg_path_length"]

    def test_fig17_has_dht_scheme(self):
        rows = substrate.fig17_path_quality_mesh(scale=SMOKE, num_pairs=30)
        assert any(row["scheme"] == "dht" for row in rows)

    def test_fig18_scaleup(self):
        rows = substrate.fig18_mesh_scaleup(scale=SMOKE, sizes=(49, 100), num_pairs=30)
        small = [r for r in rows if r["num_nodes"] == 49 and r["scheme"] == "3-tree"][0]
        large = [r for r in rows if r["num_nodes"] == 100 and r["scheme"] == "3-tree"][0]
        assert large["avg_path_length"] >= small["avg_path_length"] * 0.8

    def test_fig19_20_mesh_queries(self):
        rows = substrate.fig19_mesh_query1(
            scale=SMOKE, ratios=["1/2:1/2"], join_selectivities=[0.1]
        )
        assert {row["algorithm"] for row in rows} == {"naive", "base", "dht", "innet-cmg"}
        rows2 = substrate.fig20_mesh_query2(
            scale=SMOKE, ratios=["1/2:1/2"], join_selectivities=[0.1]
        )
        assert all(row["total_messages_k"] > 0 for row in rows2)

    def test_table3_validation(self):
        rows = substrate.table3_cost_validation(scale=SMOKE, cycles=10)
        by_algorithm = {row["algorithm"]: row for row in rows}
        assert set(by_algorithm) == {"naive", "base", "yang07"}
        # The Naive formula has no free parameters: simulation matches closely.
        assert by_algorithm["naive"]["ratio"] == pytest.approx(1.0, abs=0.15)
        for row in rows:
            assert 0.3 <= row["ratio"] <= 1.7

    def test_appg_mobility(self):
        rows = substrate.appg_mobility(scale=SMOKE, num_moves=2)
        assert rows
        for row in rows:
            assert row["update_traffic_bytes"] > 0
            assert row["propagation_cycles"] > 0
