"""Strategy-crossover scenario family: spec shape, workload and row shapers."""

from types import SimpleNamespace

from repro.engine import SCALES
from repro.engine.registry import query_builder_for
from repro.experiments.figures_crossover import (
    CROSSOVER_RUNGS,
    crossover_rows,
    crossover_tables,
    hotspot_map_rows,
    strategy_crossover_scenario,
    strategy_crossover_smoke_scenario,
)
from repro.experiments.scenarios import BUILTIN_SCENARIOS, extra_scenario_tables
from repro.network.topology import random_topology
from repro.query.analysis import analyze_query

SMOKE = SCALES["smoke"]


# ---------------------------------------------------------------------------
# Fake sweep plumbing for the row shapers
# ---------------------------------------------------------------------------

class FakeAggregate:
    def __init__(self, means, runs=()):
        self._means = means
        self.runs = list(runs)

    def mean(self, metric):
        return self._means[metric]


def fake_run(node_series):
    return SimpleNamespace(report=SimpleNamespace(node_series=node_series))


def fake_sweep(name, groups):
    return SimpleNamespace(
        scenario=SimpleNamespace(name=name),
        groups=[SimpleNamespace(setting=setting, aggregates=aggregates)
                for setting, aggregates in groups],
    )


def _traffic(total):
    return FakeAggregate({"total_traffic": float(total)})


class TestScenarioSpecs:
    def test_full_scenario_shape(self):
        scenario = strategy_crossover_scenario()
        assert scenario.query == "query0-near"
        assert scenario.grid["num_nodes"] == list(CROSSOVER_RUNGS)
        assert set(scenario.grid) == {"num_nodes", "ratio", "sigma_st"}
        assert "hotspots" in scenario.sinks
        assert "hotspot_gini" in scenario.metrics
        assert scenario.algorithms[0] == "base"

    def test_registered_in_builtin_scenarios(self):
        assert "strategy-crossover" in BUILTIN_SCENARIOS
        assert "strategy-crossover-smoke" in BUILTIN_SCENARIOS
        assert (BUILTIN_SCENARIOS["strategy-crossover-smoke"]().name
                == "strategy-crossover-smoke")

    def test_smoke_is_ci_sized(self):
        scenario = strategy_crossover_smoke_scenario()
        # 2 rungs x 1 ratio x 1 selectivity x 3 strategies x 1 run
        assert scenario.grid["num_nodes"] == [1_000, 10_000]
        assert len(scenario.expand(SMOKE)) == 6


class TestQuery0Near:
    def test_endpoints_are_deep_neighbors_and_deterministic(self):
        topology = random_topology(num_nodes=120, average_degree=7, seed=11)
        builder = query_builder_for("query0-near")
        query = builder(topology, seed=1)
        analysis = analyze_query(query)
        endpoints = {
            alias: next(n for n in topology.node_ids
                        if analysis.node_eligible(alias, {"id": n}))
            for alias in ("S", "T")
        }
        source, target = endpoints["S"], endpoints["T"]
        assert topology.base_id not in (source, target)
        assert target in topology.neighbors(source) or \
            source in topology.neighbors(target)
        # the source endpoint sits among the deepest nodes of the tree
        depths = topology.shortest_hops_view(topology.base_id)
        max_depth = max(depths.get(n, 0) for n in topology.node_ids)
        assert max(depths.get(source, 0), depths.get(target, 0)) >= max_depth - 1
        # deterministic for a fixed topology and seed
        assert str(builder(topology, seed=1).where) == str(query.where)

    def test_seed_rotates_endpoint_choice(self):
        topology = random_topology(num_nodes=120, average_degree=7, seed=11)
        builder = query_builder_for("query0-near")
        wheres = {str(builder(topology, seed=s).where) for s in range(8)}
        assert len(wheres) > 1


class TestCrossoverRows:
    def test_finds_smallest_winning_rung_per_cell(self):
        sweep = fake_sweep("strategy-crossover", [
            ({"num_nodes": 1_000, "ratio": "1/2:1/2"},
             {"base": _traffic(5_000), "innet": _traffic(6_000)}),
            ({"num_nodes": 10_000, "ratio": "1/2:1/2"},
             {"base": _traffic(50_000), "innet": _traffic(20_000)}),
        ])
        rows = crossover_rows(sweep)
        assert len(rows) == 1
        row = rows[0]
        assert row["algorithm"] == "innet"
        assert row["crossover_n"] == 10_000
        assert row["base_kb"] == 50.0
        assert row["innet_kb"] == 20.0
        assert round(row["savings_pct"]) == 60

    def test_cell_that_never_wins_still_emits_a_row(self):
        sweep = fake_sweep("strategy-crossover", [
            ({"num_nodes": 1_000, "ratio": "1:1/10"},
             {"base": _traffic(1_000), "innet": _traffic(2_000)}),
            ({"num_nodes": 10_000, "ratio": "1:1/10"},
             {"base": _traffic(3_000), "innet": _traffic(4_000)}),
        ])
        rows = crossover_rows(sweep)
        assert len(rows) == 1
        assert rows[0]["crossover_n"] == "none"
        assert "savings_pct" not in rows[0]

    def test_one_row_per_cell_and_variant(self):
        cells = []
        for ratio in ("1/2:1/2", "1:1/10"):
            for num_nodes in (1_000, 10_000):
                cells.append((
                    {"num_nodes": num_nodes, "ratio": ratio},
                    {"base": _traffic(10_000),
                     "innet": _traffic(num_nodes),
                     "innet-cmpg": _traffic(num_nodes // 2)},
                ))
        rows = crossover_rows(fake_sweep("strategy-crossover", cells))
        assert len(rows) == 4  # 2 cells x 2 variants
        assert all(row["crossover_n"] == 1_000 for row in rows)


class TestHotspotMapRows:
    def test_reports_only_the_largest_rung(self):
        series = {"hotspot.load": {7: 400.0, 3: 100.0}}
        sweep = fake_sweep("strategy-crossover", [
            ({"num_nodes": 1_000, "ratio": "1/2:1/2"},
             {"innet": FakeAggregate(
                 {"hotspot_gini": 0.9, "hotspot_max_load": 9.0},
                 runs=[fake_run(series)])}),
            ({"num_nodes": 10_000, "ratio": "1/2:1/2"},
             {"innet": FakeAggregate(
                 {"hotspot_gini": 0.5, "hotspot_max_load": 400.0},
                 runs=[fake_run(series)])}),
        ])
        rows = hotspot_map_rows(sweep)
        assert len(rows) == 1
        row = rows[0]
        assert row["num_nodes"] == 10_000
        assert row["hotspot_gini"] == 0.5
        assert row["max_load"] == 400.0
        assert row["hot_nodes"].startswith("7:400")

    def test_missing_series_yields_empty_hot_nodes(self):
        sweep = fake_sweep("strategy-crossover", [
            ({"num_nodes": 10_000, "ratio": "1/2:1/2"},
             {"base": FakeAggregate(
                 {"hotspot_gini": 0.1, "hotspot_max_load": 5.0},
                 runs=[fake_run({})])}),
        ])
        rows = hotspot_map_rows(sweep)
        assert rows[0]["hot_nodes"] == ""


class TestTableDispatch:
    def _sweep(self, name):
        return fake_sweep(name, [
            ({"num_nodes": 1_000, "ratio": "1/2:1/2"},
             {"base": _traffic(2_000), "innet": _traffic(1_000)}),
        ])

    def test_crossover_tables_titles(self):
        tables = crossover_tables(self._sweep("strategy-crossover"))
        titles = [title for title, _rows in tables]
        assert any("Crossover points" in title for title in titles)

    def test_extra_scenario_tables_dispatches_by_scenario_name(self):
        assert extra_scenario_tables(self._sweep("strategy-crossover"))
        assert extra_scenario_tables(self._sweep("strategy-crossover-smoke"))
        assert extra_scenario_tables(self._sweep("fig02-smoke")) == []
