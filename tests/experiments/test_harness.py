"""Tests for the experiment harness, scales, aggregation and reporting."""

import pytest

from repro.core import Selectivities
from repro.experiments import (
    available_algorithms,
    build_workload,
    format_table,
    make_strategy,
    results_to_rows,
    run_comparison,
    run_single,
    scale_from_env,
)
from repro.experiments.harness import (
    FIGURE2_ALGORITHMS,
    MESH_ALGORITHMS,
    SCALES,
    AggregateResult,
    RunResult,
    build_topology,
)
from repro.experiments.report import relative_to, winner
from repro.joins import InnetJoin, NaiveJoin
from repro.workloads.queries import build_query1

SMOKE = SCALES["smoke"]


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}
        assert SCALES["paper"].runs == 9
        assert SCALES["paper"].cycles == 100

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env("default").name == "default"

    def test_scaled_cycles(self):
        assert SMOKE.scaled_cycles() == SMOKE.cycles
        assert SMOKE.scaled_cycles(77) == 77


class TestStrategyFactory:
    def test_all_figure_algorithms_available(self):
        names = available_algorithms()
        for name in FIGURE2_ALGORITHMS + MESH_ALGORITHMS:
            assert name in names

    def test_make_strategy(self):
        assert isinstance(make_strategy("naive"), NaiveJoin)
        assert isinstance(make_strategy("innet-cmpg"), InnetJoin)
        assert make_strategy("innet-cmpg").name == "innet-cmpg"
        assert make_strategy("innet-learn").variant.learning

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            make_strategy("quantum-join")


class TestRunners:
    def test_run_single_produces_report(self):
        topology = build_topology(SMOKE, preset="moderate", seed=0)
        query = build_query1()
        selectivities = Selectivities(0.5, 0.5, 0.2)
        data_source = build_workload(topology, query, selectivities, seed=1)
        result = run_single(query, topology, data_source, "base", selectivities,
                            cycles=5, seed=0)
        assert isinstance(result, RunResult)
        assert result.report.total_traffic > 0
        assert result.metric("total_traffic") == result.report.total_traffic

    def test_run_comparison_aggregates(self):
        selectivities = Selectivities(0.5, 0.5, 0.2)
        results = run_comparison(
            build_query1, algorithms=["naive", "base"],
            data_selectivities=selectivities, scale=SMOKE,
        )
        assert set(results) == {"naive", "base"}
        for aggregate in results.values():
            assert isinstance(aggregate, AggregateResult)
            assert len(aggregate.runs) == SMOKE.runs
            assert aggregate.mean("total_traffic") > 0
            assert aggregate.confidence_95("total_traffic") >= 0.0
        summary = results["naive"].summary()
        assert "total_traffic" in summary

    def test_run_comparison_with_adhoc_builder(self):
        # Unregistered callables still work (engine falls back to a
        # process-local inline registration and serial execution).
        selectivities = Selectivities(0.5, 0.5, 0.2)
        results = run_comparison(
            lambda: build_query1(window_size=1), algorithms=["naive"],
            data_selectivities=selectivities, scale=SMOKE,
        )
        assert results["naive"].mean("total_traffic") > 0

    def test_run_comparison_parallel_matches_serial(self):
        selectivities = Selectivities(0.5, 0.5, 0.2)
        kwargs = dict(
            query_builder=build_query1, algorithms=["naive", "base"],
            data_selectivities=selectivities, scale=SMOKE,
        )
        serial = run_comparison(**kwargs)
        parallel = run_comparison(jobs=2, **kwargs)
        for name in serial:
            assert serial[name].mean("total_traffic") == parallel[name].mean("total_traffic")

    def test_confidence_interval_with_multiple_runs(self):
        selectivities = Selectivities(0.5, 0.5, 0.2)
        two_run_scale = SCALES["smoke"].__class__(
            name="two", runs=2, cycles=5, num_nodes=60, long_cycles=10
        )
        results = run_comparison(
            build_query1, algorithms=["naive"],
            data_selectivities=selectivities, scale=two_run_scale,
        )
        aggregate = results["naive"]
        assert len(aggregate.runs) == 2
        assert aggregate.confidence_95("total_traffic") >= 0.0


class TestReporting:
    def _fake_results(self):
        selectivities = Selectivities(0.5, 0.5, 0.2)
        return run_comparison(
            build_query1, algorithms=["naive", "base"],
            data_selectivities=selectivities, scale=SMOKE,
        )

    def test_results_to_rows_and_format(self):
        results = self._fake_results()
        rows = results_to_rows(results, metrics=("total_traffic",), label="1/2:1/2")
        assert len(rows) == 2
        assert rows[0]["setting"] == "1/2:1/2"
        table = format_table(rows, title="Figure X")
        assert "Figure X" in table
        assert "naive" in table
        assert format_table([]) == "(no rows)"

    def test_winner_and_relative(self):
        results = self._fake_results()
        best = winner(results)
        assert best in {"naive", "base"}
        ratios = relative_to(results, reference="naive")
        assert ratios["naive"] == pytest.approx(1.0)
        assert all(v > 0 for v in ratios.values())
