"""Tests for the command-line figure runner."""

import pytest

from repro.experiments.cli import FIGURES, available_figures, build_parser, main, run_figure
from repro.experiments.harness import SCALES


class TestRegistry:
    def test_every_registered_figure_is_callable(self):
        for name, (description, function) in FIGURES.items():
            assert description
            assert callable(function)

    def test_expected_figures_present(self):
        names = available_figures()
        for expected in ("fig02", "fig07", "fig10", "fig13", "fig16", "table3", "appg"):
            assert expected in names

    def test_run_figure_unknown(self):
        with pytest.raises(KeyError):
            run_figure("fig99", SCALES["smoke"])

    def test_run_figure_smoke(self):
        rows = run_figure("fig06", SCALES["smoke"])
        assert rows
        assert {"centralized", "distributed"} == {row["scheme"] for row in rows}


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "Available figures" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_run_one_figure(self, capsys):
        assert main(["--figure", "fig06", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "centralized" in out

    def test_unknown_figure_sets_exit_code(self, capsys):
        assert main(["--figure", "fig99", "--scale", "smoke"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "default"
        assert args.figure == []
