"""Tests for the command-line figure runner."""

import pytest

from repro.experiments.cli import FIGURES, available_figures, build_parser, main, run_figure
from repro.experiments.harness import SCALES


class TestRegistry:
    def test_every_registered_figure_is_callable(self):
        for name, (description, function) in FIGURES.items():
            assert description
            assert callable(function)

    def test_expected_figures_present(self):
        names = available_figures()
        for expected in ("fig02", "fig07", "fig10", "fig13", "fig16", "table3", "appg"):
            assert expected in names

    def test_run_figure_unknown(self):
        with pytest.raises(KeyError):
            run_figure("fig99", SCALES["smoke"])

    def test_run_figure_smoke(self):
        rows = run_figure("fig06", SCALES["smoke"])
        assert rows
        assert {"centralized", "distributed"} == {row["scheme"] for row in rows}


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "Available figures" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_run_one_figure(self, capsys):
        assert main(["--figure", "fig06", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "centralized" in out

    def test_unknown_figure_sets_exit_code(self, capsys):
        assert main(["--figure", "fig99", "--scale", "smoke"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "default"
        assert args.figure == []


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig02-smoke" in out
        assert "built-in" in out

    def test_run_scenario_builtin(self, capsys, tmp_path, monkeypatch):
        store = tmp_path / "results.sqlite"
        assert main(["run-scenario", "fig02-smoke", "--scale", "smoke",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "fig02-smoke" in out
        assert "36 executed" in out
        assert store.exists()
        # second invocation resumes from the store: zero runs execute
        assert main(["run-scenario", "fig02-smoke", "--scale", "smoke",
                     "--store", str(store)]) == 0
        assert "0 executed, 36 from the result store" in capsys.readouterr().out

    def test_run_scenario_from_file(self, capsys, tmp_path):
        from repro.experiments.scenarios import BUILTIN_SCENARIOS

        path = tmp_path / "custom.json"
        scenario = BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            name="custom", algorithms=("naive",), grid={},
        )
        path.write_text(scenario.to_json())
        assert main(["run-scenario", str(path), "--scale", "smoke",
                     "--no-store"]) == 0
        assert "custom" in capsys.readouterr().out

    def test_run_scenario_unknown(self, capsys):
        assert main(["run-scenario", "fig99", "--scale", "smoke",
                     "--no-store"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
