"""Tests for the command-line figure runner."""

import pytest

from repro.experiments.cli import FIGURES, available_figures, build_parser, main, run_figure
from repro.experiments.harness import SCALES


class TestRegistry:
    def test_every_registered_figure_is_callable(self):
        for name, (description, function) in FIGURES.items():
            assert description
            assert callable(function)

    def test_expected_figures_present(self):
        names = available_figures()
        for expected in ("fig02", "fig07", "fig10", "fig13", "fig16", "table3", "appg"):
            assert expected in names

    def test_run_figure_unknown(self):
        with pytest.raises(KeyError):
            run_figure("fig99", SCALES["smoke"])

    def test_run_figure_smoke(self):
        rows = run_figure("fig06", SCALES["smoke"])
        assert rows
        assert {"centralized", "distributed"} == {row["scheme"] for row in rows}


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "Available figures" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_run_one_figure(self, capsys):
        assert main(["--figure", "fig06", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "centralized" in out

    def test_unknown_figure_sets_exit_code(self, capsys):
        assert main(["--figure", "fig99", "--scale", "smoke"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "default"
        assert args.figure == []


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig02-smoke" in out
        assert "built-in" in out

    def test_run_scenario_builtin(self, capsys, tmp_path, monkeypatch):
        store = tmp_path / "results.sqlite"
        assert main(["run-scenario", "fig02-smoke", "--scale", "smoke",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "fig02-smoke" in out
        assert "36 executed" in out
        assert store.exists()
        # second invocation resumes from the store: zero runs execute
        assert main(["run-scenario", "fig02-smoke", "--scale", "smoke",
                     "--store", str(store)]) == 0
        assert "0 executed, 36 from the result store" in capsys.readouterr().out

    def test_run_scenario_from_file(self, capsys, tmp_path):
        from repro.experiments.scenarios import BUILTIN_SCENARIOS

        path = tmp_path / "custom.json"
        scenario = BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            name="custom", algorithms=("naive",), grid={},
        )
        path.write_text(scenario.to_json())
        assert main(["run-scenario", str(path), "--scale", "smoke",
                     "--no-store"]) == 0
        assert "custom" in capsys.readouterr().out

    def test_run_scenario_unknown(self, capsys):
        assert main(["run-scenario", "fig99", "--scale", "smoke",
                     "--no-store"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestMetricsOption:
    @pytest.fixture()
    def tiny_scenario(self):
        """A one-run scenario the --metrics flag can instrument cheaply."""
        from repro.engine import ScenarioSpec
        from repro.experiments.scenarios import BUILTIN_SCENARIOS, register_scenario

        register_scenario("zmetrics", lambda: ScenarioSpec(
            name="zmetrics", query="query1", algorithms=("naive",),
            data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
            runs=1, cycles=3,
        ))
        try:
            yield "zmetrics"
        finally:
            BUILTIN_SCENARIOS.pop("zmetrics", None)

    def test_metrics_flag_renders_and_persists_node_series(
            self, capsys, tmp_path, tiny_scenario):
        from repro.engine import ResultStore

        store = tmp_path / "results.sqlite"
        assert main(["run-scenario", tiny_scenario, "--scale", "smoke",
                     "--metrics", "energy,hotspots", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Instrumentation summary" in out
        assert "energy_total_uj" in out
        assert "Per-node energy (top 5, uJ)" in out
        with ResultStore(store) as result_store:
            assert result_store.node_metrics_count(scenario=tiny_scenario) > 0
            rows = result_store.node_metrics(scenario=tiny_scenario,
                                             series="energy_uj")
            assert rows and rows[0]["value"] >= 0.0

    def test_metrics_runs_coexist_with_plain_runs(self, capsys, tmp_path,
                                                  tiny_scenario):
        """Instrumented and plain runs have distinct keys in one store."""
        store = tmp_path / "results.sqlite"
        assert main(["run-scenario", tiny_scenario, "--scale", "smoke",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["run-scenario", tiny_scenario, "--scale", "smoke",
                     "--metrics", "energy", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        # the instrumented invocation cannot be served by the plain run
        assert "1 executed, 0 from the result store" in out
        # plain re-invocation still resumes from the store
        assert main(["run-scenario", tiny_scenario, "--scale", "smoke",
                     "--store", str(store)]) == 0
        assert "0 executed, 1 from the result store" in capsys.readouterr().out

    def test_unknown_metrics_sink_is_a_usage_error(self, capsys, tiny_scenario):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-scenario", tiny_scenario, "--scale", "smoke",
                  "--no-store", "--metrics", "voltage"])
        assert excinfo.value.code == 2
        assert "unknown metrics sink" in capsys.readouterr().err

    def test_metrics_augments_scenario_sinks(self, capsys, tmp_path):
        """--metrics adds to a scenario's own sinks instead of replacing
        them, so declared metric columns stay resolvable."""
        store = tmp_path / "results.sqlite"
        assert main(["run-scenario", "energy-budget", "--scale", "smoke",
                     "--metrics", "energy", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "hotspot_gini" in out          # scenario's own hotspot sink
        assert "energy_total_uj" in out

    def test_campaign_summary_reports_metric_values(self, capsys, tmp_path,
                                                    tiny_scenario):
        assert main(["run-campaign", tiny_scenario, "--scale", "smoke",
                     "--metrics", "energy", "--store",
                     str(tmp_path / "c.sqlite"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "metric_values" in out


class TestRunCampaign:
    @pytest.fixture()
    def tiny_campaign(self):
        """Two throwaway registered scenarios a glob can pick up together."""
        from repro.engine import ScenarioSpec
        from repro.experiments.scenarios import BUILTIN_SCENARIOS, register_scenario

        def factory(name):
            return lambda: ScenarioSpec(
                name=name, query="query1", algorithms=("naive",),
                data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
                runs=1, cycles=3,
            )

        names = ("zcamp-a", "zcamp-b")
        for name in names:
            register_scenario(name, factory(name))
        try:
            yield names
        finally:
            for name in names:
                BUILTIN_SCENARIOS.pop(name, None)

    def test_glob_runs_matching_scenarios_through_one_store(
            self, capsys, tmp_path, tiny_campaign):
        store = tmp_path / "campaign.sqlite"
        assert main(["run-campaign", "zcamp-*", "--scale", "smoke",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "zcamp-a" in out and "zcamp-b" in out
        assert "Campaign summary" in out
        assert "TOTAL" in out
        assert store.exists()
        # resume on a warm store executes zero runs
        assert main(["run-campaign", "zcamp-*", "--scale", "smoke",
                     "--store", str(store), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out.count("0 executed, 1 from the result store") == 2

    def test_patterns_deduplicate(self, capsys, tmp_path, tiny_campaign):
        assert main(["run-campaign", "zcamp-a", "zcamp-*", "--scale", "smoke",
                     "--store", str(tmp_path / "c.sqlite"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out.count("scenario 'zcamp-a'") == 1

    def test_no_pattern_errors(self, capsys):
        assert main(["run-campaign", "--scale", "smoke"]) == 2
        assert "PATTERN or --all" in capsys.readouterr().err

    def test_all_with_patterns_errors(self, capsys):
        assert main(["run-campaign", "fig02-smoke", "--all",
                     "--scale", "smoke"]) == 2
        assert "--all cannot be combined" in capsys.readouterr().err

    def test_degenerate_flush_window_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-campaign", "fig02-smoke", "--flush-every", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_unmatched_pattern_errors(self, capsys):
        assert main(["run-campaign", "zz-no-such-*", "--scale", "smoke"]) == 2
        assert "matches no scenario" in capsys.readouterr().err

    def test_match_scenarios_all_and_files(self, tmp_path, tiny_campaign):
        from repro.experiments.scenarios import (
            BUILTIN_SCENARIOS,
            match_scenarios,
            resolve_scenario,
        )

        assert match_scenarios([], include_all=True) == sorted(BUILTIN_SCENARIOS)
        assert match_scenarios(["fig0*"])[0].startswith("fig0")
        # scenario files are matched by stem and returned as paths
        path = tmp_path / "zfile-camp.json"
        path.write_text(resolve_scenario("zcamp-a").with_overrides(
            name="zfile-camp").to_json())
        assert match_scenarios(["zfile-*"], directory=tmp_path) == [str(path)]

    def test_progress_lines_report_eta(self, capsys, tmp_path, tiny_campaign):
        assert main(["run-campaign", "zcamp-a", "--scale", "smoke",
                     "--no-store"]) == 0
        err = capsys.readouterr().err
        assert "[1/1] zcamp-a" in err
        assert "eta" in err


class TestRunnerPassThrough:
    def test_every_builtin_figure_accepts_a_runner(self):
        import inspect

        for name, (_, function) in FIGURES.items():
            assert "runner" in inspect.signature(function).parameters, name

    def test_runner_less_figure_warns(self, capsys):
        from repro.engine import SweepRunner
        from repro.experiments import cli

        def no_runner_figure(scale):
            return [{"value": 1}]

        cli.FIGURES["figtest"] = ("runner-less test figure", no_runner_figure)
        try:
            rows = run_figure("figtest", SCALES["smoke"],
                              runner=SweepRunner(jobs=2))
            assert rows == [{"value": 1}]
            err = capsys.readouterr().err
            assert "figtest" in err
            assert "does not accept a sweep runner" in err
        finally:
            del cli.FIGURES["figtest"]

    def test_runner_figures_do_not_warn(self, capsys):
        from repro.engine import SweepRunner

        run_figure("fig06", SCALES["smoke"], runner=SweepRunner(jobs=1))
        assert capsys.readouterr().err == ""


class TestEnvScaleHandling:
    def test_env_scale_becomes_parser_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert build_parser().parse_args([]).scale == "smoke"

    def test_empty_env_scale_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "")
        assert build_parser().parse_args([]).scale == "default"

    def test_unknown_env_scale_aborts_with_preset_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert "galactic" in str(excinfo.value)
        assert "smoke" in str(excinfo.value)

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        args = build_parser().parse_args(["--scale", "default"])
        assert args.scale == "default"


class TestScenarioCoverage:
    def test_every_figure_is_a_registered_scenario(self):
        """Every cli.FIGURES entry must be runnable via run-scenario."""
        from repro.experiments.scenarios import BUILTIN_SCENARIOS

        for name in FIGURES:
            assert name in BUILTIN_SCENARIOS, name

    def test_run_scenario_multi_phase_builtin(self, capsys):
        assert main(["run-scenario", "fig14-smoke", "--scale", "smoke",
                     "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "fig14-smoke" in out
        assert "no_failure" in out and "with_failure" in out
