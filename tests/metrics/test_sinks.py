"""Hand-computed arithmetic for the energy, hotspot and latency sinks."""

import pytest

from repro.metrics import EnergyModel, EnergySink, HotspotSink, LatencySink
from repro.metrics.latency import StreamingQuantile
from repro.network import (
    Message,
    MessageKind,
    NetworkSimulator,
    SensorNode,
    Topology,
)


def chain_topology(length=5):
    nodes = {i: SensorNode(node_id=i, position=(float(i), 0.0)) for i in range(length)}
    adjacency = {i: set() for i in range(length)}
    for i in range(length - 1):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    return Topology(nodes=nodes, adjacency=adjacency, base_id=0, radio_range=1.5)


class TestEnergyArithmetic:
    """Every expectation below is computed by hand from the model."""

    def _sink(self, **kwargs):
        defaults = dict(tx_uj_per_byte=2.0, rx_uj_per_byte=1.0,
                        idle_uj_per_cycle=0.5)
        defaults.update(kwargs)
        return EnergySink(EnergyModel(**defaults))

    def test_path_charge(self):
        sink = self._sink()
        sink.charge_path([0, 1, 2], 10, MessageKind.DATA)
        # node 0: tx 10B * 2 = 20; node 1: rx 10 + tx 20 = 30; node 2: rx 10
        assert sink.energy[0] == 20.0
        assert sink.energy[1] == 30.0
        assert sink.energy[2] == 10.0

    def test_path_charge_with_attempts(self):
        sink = self._sink()
        sink.charge_path([0, 1, 2], 10, MessageKind.DATA, attempts=[3, 1])
        # node 0 transmits 3 times (60), node 1 receives once (10) + tx once (20)
        assert sink.energy[0] == 60.0
        assert sink.energy[1] == 30.0
        assert sink.energy[2] == 10.0

    def test_truncated_path_charge(self):
        sink = self._sink()
        sink.charge_path([0, 1, 2, 3], 10, MessageKind.DATA,
                         attempts=[1, 1, 1], num_hops=2)
        assert sink.energy[0] == 20.0
        assert sink.energy[1] == 30.0
        assert sink.energy[2] == 10.0
        assert sink.energy.get(3, 0.0) == 0.0

    def test_transmission_and_broadcast(self):
        sink = self._sink()
        sink.charge_transmission(1, 10, MessageKind.DATA, attempts=2, receiver=2)
        assert sink.energy[1] == 40.0  # two transmissions
        assert sink.energy[2] == 10.0  # one heard copy
        sink.charge_broadcast(3, 5, MessageKind.CONTROL, receivers=[2, 4])
        assert sink.energy[3] == 10.0
        assert sink.energy[2] == 15.0
        assert sink.energy[4] == 5.0

    def test_idle_cost_skips_base_station(self):
        sim = NetworkSimulator(chain_topology(length=3))
        sink = sim.add_sink(self._sink())
        sim.advance_sampling_cycle()
        sim.advance_sampling_cycle()
        # base (node 0) is mains powered; nodes 1 and 2 idle twice
        assert sink.energy[0] == 0.0
        assert sink.energy[1] == 1.0
        assert sink.energy[2] == 1.0

    def test_simulator_transfer_matches_hand_computation(self):
        sim = NetworkSimulator(chain_topology())
        sink = sim.add_sink(self._sink(idle_uj_per_cycle=0.0))
        sim.transfer([0, 1, 2, 3], 10, MessageKind.DATA)
        assert sink.energy[0] == 20.0
        assert sink.energy[1] == 30.0
        assert sink.energy[2] == 30.0
        assert sink.energy[3] == 10.0
        summary = sink.summary()
        # non-base total: 30 + 30 + 10 (+ node 4 with 0)
        assert summary["energy_total_uj"] == 70.0
        assert summary["energy_max_uj"] == 30.0
        assert summary["energy_dead_nodes"] == 0.0
        assert summary["energy_lifetime_cycles"] == -1.0

    def test_lifetime_first_death(self):
        sim = NetworkSimulator(chain_topology(length=3))
        sink = sim.add_sink(self._sink(idle_uj_per_cycle=0.0, capacity_uj=50.0))
        sim.transfer([1, 2], 10, MessageKind.DATA)   # node 1 at 20 uJ
        sim.advance_sampling_cycle()
        assert sink.first_death_node is None
        sim.transfer([1, 2], 20, MessageKind.DATA)   # node 1 at 60 uJ >= 50
        sim.advance_sampling_cycle()
        assert sink.first_death_node == 1
        assert sink.first_death_cycle == 2
        summary = sink.summary()
        assert summary["energy_lifetime_cycles"] == 2.0
        assert summary["energy_dead_nodes"] == 1.0

    def test_dead_nodes_stop_idling(self):
        sim = NetworkSimulator(chain_topology(length=3))
        sink = sim.add_sink(self._sink(idle_uj_per_cycle=1.0, capacity_uj=10.0))
        sim.transfer([1, 2], 10, MessageKind.DATA)   # node 1 at 20 >= 10
        sim.advance_sampling_cycle()                  # death detected, +idle first
        spent = sink.energy[1]
        sim.advance_sampling_cycle()
        sim.advance_sampling_cycle()
        assert sink.energy[1] == spent  # no further idle draw
        assert sink.energy[2] > 10.0    # alive node keeps idling

    def test_idle_skips_topology_dead_nodes(self):
        """Failure-injected nodes have no radio: no idle draw, no bogus
        battery death."""
        topo = chain_topology(length=3)
        sim = NetworkSimulator(topo)
        sink = sim.add_sink(self._sink(idle_uj_per_cycle=1.0, capacity_uj=3.0))
        topo.nodes[2].fail()
        for _ in range(5):
            sim.advance_sampling_cycle()
        assert sink.energy[2] == 0.0
        assert sink.first_death_node == 1  # the alive node idled past 3 uJ
        assert 2 not in sink._dead

    def test_base_station_never_dies(self):
        sim = NetworkSimulator(chain_topology(length=3))
        sink = sim.add_sink(self._sink(idle_uj_per_cycle=0.0, capacity_uj=5.0))
        sim.transfer([1, 0], 10, MessageKind.DATA)  # base receives 10 > 5
        sim.advance_sampling_cycle()
        assert sink.first_death_node == 1           # the transmitter died
        assert 0 not in sink._dead

    def test_model_or_overrides_not_both(self):
        with pytest.raises(ValueError):
            EnergySink(EnergyModel(), capacity_uj=1.0)

    def test_node_series_and_reset(self):
        sink = self._sink()
        sink.charge_path([0, 1], 10, MessageKind.DATA)
        assert sink.node_series() == {"energy_uj": {0: 20.0, 1: 10.0}}
        sink.reset()
        assert sink.summary()["energy_total_uj"] == 0.0


class TestHotspotSink:
    def test_load_matches_traffic_stats_at_node(self):
        sim = NetworkSimulator(chain_topology())
        sink = sim.add_sink(HotspotSink())
        sim.transfer([0, 1, 2, 3], 10, MessageKind.DATA)
        sim.transfer([4, 3, 2], 7, MessageKind.RESULT)
        sim.broadcast(2, 8, MessageKind.CONTROL)
        stats = sim.stats
        for node_id in sim.topology.node_ids:
            assert sink.load[node_id] == stats.at_node(node_id)
        assert sink.max_load() == stats.max_node_load()

    def test_top_matches_top_loaded_nodes(self):
        sim = NetworkSimulator(chain_topology())
        sink = sim.add_sink(HotspotSink())
        sim.transfer([0, 1, 2, 3, 4], 11, MessageKind.DATA)
        sim.transfer([2, 3], 5, MessageKind.DATA)
        assert sink.top(3) == sim.stats.top_loaded_nodes(k=3)

    def test_gini_balanced_and_skewed(self):
        balanced = HotspotSink()
        for node in range(1, 5):
            balanced.charge_transmission(node, 10, MessageKind.DATA)
        assert balanced.gini() == pytest.approx(0.0)
        skewed = HotspotSink()
        skewed.charge_transmission(1, 1000, MessageKind.DATA)
        for node in range(2, 10):
            skewed.charge_transmission(node, 1, MessageKind.DATA)
        assert 0.8 < skewed.gini() < 1.0

    def test_gini_excludes_base_station(self):
        sim = NetworkSimulator(chain_topology(length=3))
        sink = sim.add_sink(HotspotSink())
        # all traffic lands on the base (node 0): the remaining nodes carry
        # equal load, so the non-base distribution stays balanced
        sim.transfer([1, 0], 10, MessageKind.DATA)
        sim.transfer([2, 1, 0], 10, MessageKind.DATA)
        assert sink.gini() < 0.4
        summary = sink.summary()
        assert summary["hotspot_max_load"] == sink.max_load()

    def test_message_accounting_mode(self):
        from repro.network import TrafficAccounting

        sim = NetworkSimulator(chain_topology(),
                               accounting=TrafficAccounting.MESSAGES)
        sink = sim.add_sink(HotspotSink())
        sim.transfer([0, 1, 2], 999, MessageKind.DATA)
        assert sink.load[1] == 2.0  # one sent + one received message

    def test_explicit_units_survive_attach(self):
        """A constructor-supplied bytes_per_unit wins over the simulator's
        accounting mode."""
        sim = NetworkSimulator(chain_topology())  # bytes accounting
        sink = sim.add_sink(HotspotSink(bytes_per_unit=False))
        sim.transfer([0, 1, 2], 999, MessageKind.DATA)
        assert sink.load[1] == 2.0  # still counted per message


class TestLatencySink:
    def test_mean_matches_listwise_average(self):
        sim = NetworkSimulator(chain_topology())
        for destination, kind in ((2, MessageKind.DATA), (1, MessageKind.RESULT),
                                  (4, MessageKind.DATA)):
            sim.send(Message(kind=kind, source=0, destination=destination,
                             size_bytes=5, path=list(range(destination + 1))))
        sim.run_until_idle()
        expected = [m.latency_cycles for m in sim.delivered]
        assert sim.latency.mean() == pytest.approx(sum(expected) / len(expected))
        data = [m.latency_cycles for m in sim.delivered if m.kind is MessageKind.DATA]
        assert sim.latency.mean([MessageKind.DATA]) == pytest.approx(
            sum(data) / len(data))
        assert sim.latency.mean([MessageKind.CONTROL]) == 0.0

    def test_summary_keys(self):
        sink = LatencySink()
        for latency in (1, 2, 3, 4, 100):
            sink.on_delivery(MessageKind.DATA, latency)
        summary = sink.summary()
        assert summary["latency_count"] == 5.0
        assert summary["latency_mean"] == pytest.approx(22.0)
        assert summary["latency_max"] == 100.0
        assert summary["latency_p50"] == pytest.approx(3.0)

    def test_streaming_quantile_accuracy(self):
        median = StreamingQuantile(0.5)
        p95 = StreamingQuantile(0.95)
        # deterministic shuffle of 1..1000
        values = [(i * 617) % 1000 + 1 for i in range(1000)]
        assert sorted(set(values)) == list(range(1, 1001))
        for value in values:
            median.add(value)
            p95.add(value)
        assert median.value() == pytest.approx(500, rel=0.05)
        assert p95.value() == pytest.approx(950, rel=0.05)

    def test_quantile_exact_under_five_samples(self):
        quantile = StreamingQuantile(0.5)
        assert quantile.value() == 0.0
        for value in (9, 1, 5):
            quantile.add(value)
        assert quantile.value() == 5.0

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            StreamingQuantile(1.0)
