"""Tests for the event-sink metrics pipeline and TrafficStats-as-sink."""

import pytest

from repro.metrics import (
    EnergySink,
    HotspotSink,
    LatencySink,
    MetricsPipeline,
    MetricsSink,
    available_sink_presets,
    build_sinks,
    summary_prefixes,
    validate_sink_entries,
)
from repro.network import (
    MessageKind,
    NetworkSimulator,
    SensorNode,
    Topology,
    TrafficStats,
)


def chain_topology(length=5):
    nodes = {i: SensorNode(node_id=i, position=(float(i), 0.0)) for i in range(length)}
    adjacency = {i: set() for i in range(length)}
    for i in range(length - 1):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    return Topology(nodes=nodes, adjacency=adjacency, base_id=0, radio_range=1.5)


class RecordingSink(MetricsSink):
    """A sink that records every event it receives."""

    name = "recording"

    def __init__(self):
        self.events = []

    def charge_path(self, path, size_bytes, kind, attempts=None, num_hops=None):
        self.events.append(("path", tuple(path), size_bytes))

    def charge_drop(self, queue_drop=False):
        self.events.append(("drop", queue_drop))

    def on_sampling_cycle(self, cycle):
        self.events.append(("cycle", cycle))


class TestDispatch:
    def test_single_listener_is_the_bound_method(self):
        """The default config dispatches with zero added indirection."""
        stats = TrafficStats()
        pipeline = MetricsPipeline([stats])
        assert pipeline.charge_path.__self__ is stats
        assert pipeline.charge_transmission.__self__ is stats

    def test_uninterested_sinks_are_skipped(self):
        """A sink only receives events its class implements."""
        stats = TrafficStats()
        latency = LatencySink()
        pipeline = MetricsPipeline([stats, latency])
        # latency inherits the charge no-ops, so stats stays the only
        # charge listener and keeps the direct-bound dispatch
        assert pipeline.charge_path.__self__ is stats
        assert pipeline.on_delivery.__self__ is latency

    def test_fanout_reaches_every_listener(self):
        stats = TrafficStats()
        recorder = RecordingSink()
        pipeline = MetricsPipeline([stats, recorder])
        pipeline.charge_path([0, 1, 2], 10, MessageKind.DATA)
        pipeline.charge_drop(queue_drop=True)
        assert stats.total() == 20.0
        assert recorder.events == [("path", (0, 1, 2), 10), ("drop", True)]

    def test_no_listener_event_is_a_noop(self):
        pipeline = MetricsPipeline([TrafficStats()])
        pipeline.on_sampling_cycle(3)  # nothing listens; must not raise

    def test_sinkless_pipeline_dispatches_to_noops(self):
        pipeline = MetricsPipeline()
        pipeline.charge_drop()
        pipeline.charge_path([0, 1], 10, MessageKind.DATA)
        pipeline.on_delivery(MessageKind.DATA, 2)
        assert pipeline.summaries() == {}
        assert pipeline.node_series() == {}

    def test_reset_resets_every_sink(self):
        stats = TrafficStats()
        pipeline = MetricsPipeline([stats, RecordingSink()])
        pipeline.charge_path([0, 1], 10, MessageKind.DATA)
        pipeline.reset()
        assert stats.total() == 0.0
        assert stats.messages_sent == 0


class TestSimulatorIntegration:
    def _drive(self, sim):
        sim.transfer([0, 1, 2, 3], 10, MessageKind.DATA)
        sim.transfer([2, 1], 7, MessageKind.RESULT)
        sim.broadcast(1, 8, MessageKind.CONTROL)
        sim.flood(0, 5, MessageKind.CONTROL)
        sim.advance_sampling_cycle()
        sim.transfer([3, 2, 1, 0], 12, MessageKind.DATA)

    def test_extra_sinks_never_change_traffic(self):
        """Observer sinks leave TrafficStats bit-identical (pipeline-off
        equivalence at the simulator level)."""
        plain = NetworkSimulator(chain_topology())
        instrumented = NetworkSimulator(
            chain_topology(),
            sinks=[EnergySink(), HotspotSink(), LatencySink()],
        )
        self._drive(plain)
        self._drive(instrumented)
        assert plain.stats.transmitted == instrumented.stats.transmitted
        assert plain.stats.received == instrumented.stats.received
        assert plain.stats.by_kind == instrumented.stats.by_kind
        assert plain.stats.messages_sent == instrumented.stats.messages_sent
        assert plain.stats.snapshot() == instrumented.stats.snapshot()

    def test_traffic_stats_as_sink_merge_parity(self):
        """Stats charged through the pipeline merge exactly like the
        hand-charged originals."""
        sim_a = NetworkSimulator(chain_topology())
        sim_b = NetworkSimulator(chain_topology())
        sim_a.transfer([0, 1, 2], 10, MessageKind.DATA)
        sim_b.transfer([2, 3, 4], 6, MessageKind.RESULT)
        merged = sim_a.stats.merge(sim_b.stats)
        reference = TrafficStats()
        reference.charge_path([0, 1, 2], 10, MessageKind.DATA)
        reference.charge_path([2, 3, 4], 6, MessageKind.RESULT)
        assert merged.transmitted == reference.transmitted
        assert merged.received == reference.received
        assert merged.by_kind == reference.by_kind
        assert merged.messages_sent == reference.messages_sent

    def test_traffic_stats_as_sink_reset_parity(self):
        sim = NetworkSimulator(chain_topology(), sinks=[EnergySink()])
        sim.transfer([0, 1, 2], 10, MessageKind.DATA)
        sim.pipeline.reset()
        assert sim.stats.total() == 0.0
        assert sim.stats.messages_sent == 0
        snapshot = sim.stats.snapshot()
        assert snapshot["total"] == 0.0
        assert snapshot["by_kind"] == {}

    def test_add_sink_after_construction(self):
        sim = NetworkSimulator(chain_topology())
        recorder = sim.add_sink(RecordingSink())
        sim.transfer([0, 1], 10, MessageKind.DATA)
        assert recorder.events == [("path", (0, 1), 10)]

    def test_pipeline_direct_add_sink_observes_events(self):
        """Sinks registered on the pipeline itself (bypassing the simulator
        wrapper) still see every subsequent charge."""
        sim = NetworkSimulator(chain_topology())
        recorder = RecordingSink()
        sim.pipeline.add_sink(recorder)
        sim.transfer([0, 1, 2], 10, MessageKind.DATA)
        assert recorder.events == [("path", (0, 1, 2), 10)]

    def test_summaries_and_series_cover_reporting_sinks_only(self):
        sim = NetworkSimulator(chain_topology(), sinks=[EnergySink()])
        sim.transfer([0, 1], 10, MessageKind.DATA)
        summaries = sim.pipeline.summaries()
        assert "energy_total_uj" in summaries
        # built-in traffic/latency sinks are non-reporting
        assert all(key.startswith("energy_") for key in summaries)
        series = sim.pipeline.node_series()
        assert set(series) == {"energy.energy_uj"}


class TestPresets:
    def test_build_sinks_by_name_and_mapping(self):
        sinks = build_sinks(["energy", {"sink": "hotspots", "top_k": 3},
                             "latency"])
        assert [type(sink).__name__ for sink in sinks] == [
            "EnergySink", "HotspotSink", "LatencySink"]
        assert sinks[1].top_k == 3

    def test_all_group_expands(self):
        sinks = build_sinks(["all"])
        assert len(sinks) == 3

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown sink preset"):
            build_sinks(["voltage"])
        with pytest.raises(ValueError, match="'sink' key"):
            validate_sink_entries([{"capacity_uj": 1.0}])

    def test_available_presets(self):
        assert {"energy", "hotspots", "latency", "all"} <= set(
            available_sink_presets())

    def test_summary_prefixes(self):
        assert summary_prefixes(["all"]) == ("energy_", "hotspot_", "latency_")
        assert summary_prefixes([{"sink": "energy", "capacity_uj": 1.0}]) == (
            "energy_",)


class TestBoundNodeSeries:
    """Memory-bounded per-node series for massive-topology reports."""

    def test_keeps_heaviest_entries_sorted_by_id(self):
        from repro.metrics.pipeline import bound_node_series

        values = {0: 1.0, 1: 9.0, 2: 3.0, 3: 9.0, 4: 0.5}
        bounded, summary = bound_node_series(values, 3)
        # top-3 by value, ties toward the lower id, re-sorted by node id
        assert bounded == {1: 9.0, 2: 3.0, 3: 9.0}
        assert list(bounded) == [1, 2, 3]
        assert summary == {
            "nodes": 5.0, "kept": 3.0, "sum": 22.5, "mean": 4.5,
            "max": 9.0, "min": 0.5,
        }

    def test_fitting_series_pass_through_unchanged(self):
        from repro.metrics.pipeline import bound_node_series

        values = {0: 1.0, 1: 2.0}
        bounded, summary = bound_node_series(values, 2)
        assert bounded == values and summary is None
        with pytest.raises(ValueError):
            bound_node_series(values, -1)

    def test_executor_caps_series_and_summarizes(self):
        from repro.core.cost_model import Selectivities
        from repro.engine.execution import run_single
        from repro.engine.workload import build_query, build_topology, memoized_workload

        key = ("moderate", 0, 60)
        topology = build_topology(None, preset="moderate", seed=0, num_nodes=60)
        query = build_query("query1", (), topology=topology, topology_key=key)
        sel = Selectivities(0.5, 0.5, 0.2)
        source = memoized_workload(key, topology, ("query1", ()), query, sel, seed=1)

        def run(cap):
            return run_single(
                query, topology, source, "base", sel, cycles=5,
                sinks=build_sinks(["energy"]), node_series_cap=cap,
            ).report

        full, capped = run(None), run(10)
        assert full.total_traffic == capped.total_traffic  # reporting knob only
        for name, series in full.node_series.items():
            assert len(capped.node_series[name]) == 10
            assert set(capped.node_series[name]) <= set(series)
            assert f"{name}.nodes" in capped.extra
            assert f"{name}.nodes" not in full.extra

    def test_spec_cap_is_hash_neutral_when_unset(self):
        from dataclasses import replace

        from repro.engine.spec import ScenarioSpec, resolve_scale

        spec = ScenarioSpec(
            name="cap", grid={"node_series_cap": [None, 32]},
        ).expand(resolve_scale("smoke"))[0]
        assert replace(spec, node_series_cap=None).run_key() == \
            replace(spec, node_series_cap=None).run_key()
        assert replace(spec, node_series_cap=32).run_key() != \
            replace(spec, node_series_cap=None).run_key()
        # the unset default round-trips out of the spec hash entirely
        assert "node_series_cap" not in ScenarioSpec(name="plain").to_dict()
