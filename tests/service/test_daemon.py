"""Daemon round trips: dispatch, the TCP front end, client and CLI."""

import json
import threading

import pytest

from repro.service.cli import main as cli_main
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon, ServiceServer, request
from repro.service.engine import ServiceConfig

SQL = (
    "SELECT S.id, T.id FROM S, T [windowsize=2 sampleinterval=100] "
    "WHERE S.id < 10 AND T.id > 30 AND S.adc0 < 500 AND T.adc0 < 500 "
    "AND S.u = T.u"
)


class TestDispatch:
    def test_errors_are_reported_not_fatal(self):
        daemon = ServiceDaemon(ServiceConfig(num_nodes=40))
        bad = daemon.handle({"op": "frobnicate"})
        assert bad["ok"] is False
        assert "frobnicate" in bad["error"]
        bad = daemon.handle({"op": "cancel", "query_id": 5})
        assert bad["ok"] is False
        good = daemon.handle({"op": "ping"})
        assert good == {"ok": True, "op": "pong", "cycle": 0}

    def test_submit_step_stats_via_dispatch(self):
        daemon = ServiceDaemon(ServiceConfig(num_nodes=40))
        admitted = daemon.handle({"op": "submit", "sql": SQL})
        assert admitted["ok"] is True
        stepped = daemon.handle({"op": "step", "cycles": 3})
        assert stepped == {"ok": True, "cycle": 3}
        stats = daemon.handle({"op": "stats"})
        assert stats["ok"] is True
        assert stats["total_traffic"] > 0


@pytest.fixture()
def live_server():
    daemon = ServiceDaemon(ServiceConfig(num_nodes=40))
    server = ServiceServer(("127.0.0.1", 0), daemon)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()
        daemon.stop()
        thread.join(timeout=5.0)


class TestTCPFrontEnd:
    def test_full_session_over_sockets(self, live_server):
        host, port = live_server
        client = ServiceClient(host, port)
        assert client.ping()["op"] == "pong"
        admitted = client.submit(sql=SQL)
        query_id = admitted["query_id"]
        client.step(4)
        status = client.status()
        assert status["cycle"] == 4
        assert status["active_queries"] == 1
        facts = client.query_status(query_id)
        assert facts["active"] is True
        client.event({"type": "fail", "node": 17})
        client.step(1)
        stats = client.stats()
        assert stats["events_applied"] == 1
        cancelled = client.cancel(query_id)
        assert cancelled["query_id"] == query_id
        with pytest.raises(RuntimeError):
            client.cancel(query_id)  # already detached

    def test_raw_request_helper(self, live_server):
        host, port = live_server
        response = request(host, port, {"op": "ping"})
        assert response["ok"] is True

    def test_cli_round_trip(self, live_server, capsys):
        host, port = live_server
        endpoint = ["--host", host, "--port", str(port)]
        assert cli_main(["ping", *endpoint]) == 0
        capsys.readouterr()  # drain the ping output
        assert cli_main(["submit", *endpoint, "--sql", SQL]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert cli_main(["step", *endpoint, "--cycles", "2"]) == 0
        capsys.readouterr()  # drain the step output
        assert cli_main(["stats", *endpoint]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["active_queries"] == 1
        assert cli_main(
            ["cancel", *endpoint, "--query-id", str(submitted["query_id"])]
        ) == 0
        assert cli_main(
            ["cancel", *endpoint, "--query-id", "99"]
        ) == 1  # daemon error -> nonzero exit
