"""The frozen ``service`` run kind and the query-churn scenario family."""

import pytest

from repro.engine import SCALES
from repro.engine.execution import execute_run
from repro.experiments.figures_service import (
    CHURN_METRICS,
    query_churn_scenario,
    query_churn_smoke_scenario,
)
from repro.experiments.scenarios import BUILTIN_SCENARIOS

SMOKE = SCALES["smoke"]


def _tiny_scenario():
    """A fast grid point: 4 concurrent queries on a 48-node field."""
    return query_churn_scenario(
        name="churn-test",
        target_queries=4,
        cycles=10,
        churn_interval=4,
        churn_count=1,
        num_nodes=48,
    )


@pytest.fixture(scope="module")
def churn_runs():
    specs = _tiny_scenario().expand(SMOKE)
    by_algorithm = {spec.algorithm: spec for spec in specs}
    return {
        name: execute_run(spec).report
        for name, spec in by_algorithm.items()
    }


class TestScenarioFamily:
    def test_registered_as_builtin(self):
        assert "query-churn" in BUILTIN_SCENARIOS
        assert "query-churn-smoke" in BUILTIN_SCENARIOS

    def test_expansion_shape(self):
        specs = query_churn_smoke_scenario().expand(SMOKE)
        assert {spec.kind for spec in specs} == {"service"}
        assert {spec.algorithm for spec in specs} == {"shared", "independent"}
        for spec in specs:
            assert spec.cycles == 20
            assert spec.run_key()  # hashable/frozen

    def test_run_keys_stable_across_expansions(self):
        first = [s.run_key() for s in _tiny_scenario().expand(SMOKE)]
        second = [s.run_key() for s in _tiny_scenario().expand(SMOKE)]
        assert first == second


class TestServiceRunKind:
    def test_shared_beats_independent(self, churn_runs):
        shared = churn_runs["shared"]
        independent = churn_runs["independent"]
        assert shared.total_traffic < independent.total_traffic
        assert shared.extra["shared_savings_units"] > 0
        assert shared.extra["independent_traffic_estimate"] == (
            shared.total_traffic + shared.extra["shared_savings_units"]
        )
        assert independent.extra["shared_savings_units"] == 0.0

    def test_churn_actually_happened(self, churn_runs):
        for report in churn_runs.values():
            assert report.extra["admitted"] > 4  # arrivals beyond cycle 0
            assert report.extra["cancelled"] > 0
            assert report.extra["peak_concurrency"] == 4

    def test_reopt_latency_recorded(self, churn_runs):
        shared = churn_runs["shared"]
        assert shared.extra["reoptimizations"] > 0
        assert shared.extra["reopt_latency_count"] > 0
        assert shared.extra["reopt_latency_p95"] >= (
            shared.extra["reopt_latency_p50"]
        )

    def test_metrics_resolvable_from_reports(self, churn_runs):
        for report in churn_runs.values():
            payload = report.as_dict()
            merged = {**payload, **payload.get("extra", {})}
            for metric in CHURN_METRICS:
                if metric.startswith("reopt"):
                    continue  # independent rows have no reopt plane
                assert metric in merged, metric

    def test_multicast_trees_ship_through_the_shared_plane(self):
        """Regression: the churn-smoke population forms multicast trees,
        whose edge blocks must fall back to per-edge shipping under the
        shared shipment plane (a scalar-only capturer without the cycle
        batcher's ``ship_edges`` API)."""
        spec = next(
            s for s in query_churn_smoke_scenario().expand(SMOKE)
            if s.algorithm == "shared"
        )
        report = execute_run(spec).report
        assert report.total_traffic > 0
        assert report.extra["shared_savings_units"] > 0

    def test_deterministic_replay(self):
        spec = next(
            s for s in _tiny_scenario().expand(SMOKE)
            if s.algorithm == "shared"
        )
        first = execute_run(spec).report.as_dict()
        second = execute_run(spec).report.as_dict()
        assert first == second
