"""Deterministic churn traces and the overlapping query pool."""

import pytest

from repro.query.parser import parse_query
from repro.service.churn import (
    ChurnEvent,
    build_churn_trace,
    churn_query,
    events_by_cycle,
)


class TestChurnTrace:
    def test_same_seed_same_trace(self):
        a = build_churn_trace(seed=7, cycles=40, target=8,
                              churn_interval=5, churn_count=2)
        b = build_churn_trace(seed=7, cycles=40, target=8,
                              churn_interval=5, churn_count=2)
        assert a == b

    def test_different_seed_different_trace(self):
        a = build_churn_trace(seed=7, cycles=40, target=8,
                              churn_interval=5, churn_count=2)
        b = build_churn_trace(seed=8, cycles=40, target=8,
                              churn_interval=5, churn_count=2)
        assert a != b

    def test_population_held_at_target(self):
        trace = build_churn_trace(seed=3, cycles=50, target=6,
                                  churn_interval=5, churn_count=2)
        live = set()
        for cycle, events in sorted(events_by_cycle(trace).items()):
            for event in events:
                if event.action == "cancel":
                    live.remove(event.slot)
                else:
                    live.add(event.slot)
            assert len(live) == 6, f"population drifted at cycle {cycle}"

    def test_cancels_ordered_before_submits(self):
        trace = build_churn_trace(seed=3, cycles=20, target=4,
                                  churn_interval=5, churn_count=2)
        for events in events_by_cycle(trace).values():
            actions = [e.action for e in events]
            assert actions == sorted(actions)  # "cancel" < "submit"

    def test_slots_are_never_reused(self):
        trace = build_churn_trace(seed=1, cycles=60, target=8,
                                  churn_interval=3, churn_count=3)
        submitted = [e.slot for e in trace if e.action == "submit"]
        assert len(submitted) == len(set(submitted))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_churn_trace(seed=0, cycles=10, target=0,
                              churn_interval=5, churn_count=1)
        with pytest.raises(ValueError):
            build_churn_trace(seed=0, cycles=10, target=4,
                              churn_interval=0, churn_count=1)


class TestChurnQueryPool:
    def test_deterministic_and_parseable(self):
        name_a, sql_a = churn_query(slot=3, seed=7, num_nodes=100)
        name_b, sql_b = churn_query(slot=3, seed=7, num_nodes=100)
        assert (name_a, sql_a) == (name_b, sql_b)
        query = parse_query(sql_a, name=name_a)
        assert query.name == "churn-q3"
        assert 1 <= query.window_size <= 2

    def test_slots_overlap_but_differ(self):
        pool = [churn_query(slot, seed=7, num_nodes=100)[1]
                for slot in range(6)]
        assert len(set(pool)) > 1  # not all identical
        # Every slot's S band lives inside the shared low-id quarter, so
        # concurrent slots share producers (the cross-query grouping fuel).
        for sql in pool:
            limit = int(sql.split("S.id < ")[1].split(" ")[0])
            assert 12 <= limit <= 25
