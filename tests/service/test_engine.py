"""ServiceEngine: admission, cancellation, stepping and live events."""

import pytest

from repro.query.parser import QueryParseError
from repro.service.engine import ServiceConfig, ServiceEngine

SQL = (
    "SELECT S.id, T.id FROM S, T [windowsize=2 sampleinterval=100] "
    "WHERE S.id < 10 AND T.id > 30 AND S.adc0 < 500 AND T.adc0 < 500 "
    "AND S.u = T.u"
)


@pytest.fixture()
def engine():
    return ServiceEngine(ServiceConfig(num_nodes=40))


class TestAdmission:
    def test_submit_step_cancel_lifecycle(self, engine):
        admitted = engine.submit(sql=SQL, name="q-life")
        assert admitted["query_id"] == 1
        assert admitted["initiation_traffic"] > 0
        engine.step(5)
        assert engine.cycle == 5
        status = engine.query_status(1)
        assert status["active"] is True
        assert status["attached_cycle"] == 0
        cancelled = engine.cancel(1)
        assert cancelled["cancelled_at_cycle"] == 5
        assert engine.query_status(1)["active"] is False
        assert engine.admitted == 1
        assert engine.cancelled == 1

    def test_submit_registered_query_name(self, engine):
        admitted = engine.submit(name="query1", algorithm="innet-cm")
        assert admitted["name"] == "query1"
        assert admitted["algorithm"] == "innet-cm"

    def test_submit_requires_sql_or_name(self, engine):
        with pytest.raises(QueryParseError):
            engine.submit()

    def test_cancel_unknown_query_raises(self, engine):
        with pytest.raises(KeyError):
            engine.cancel(99)

    def test_peak_concurrency_tracks_maximum(self, engine):
        first = engine.submit(sql=SQL, name="q-a")
        engine.submit(sql=SQL, name="q-b")
        engine.cancel(first["query_id"])
        engine.submit(sql=SQL, name="q-c")
        assert engine.peak_concurrency == 2
        assert engine.shared.active_count == 2

    def test_status_and_stats_shape(self, engine):
        engine.submit(sql=SQL, name="q-s")
        engine.step(3)
        status = engine.status()
        assert status["num_nodes"] == 40
        assert status["active_queries"] == 1
        assert len(status["queries"]) == 1
        stats = engine.stats()
        for key in (
            "cycle", "total_traffic", "base_traffic", "max_node_load",
            "shared_savings_units", "independent_traffic_estimate",
            "reoptimizations", "reopt_latency_p50", "admitted",
            "peak_concurrency",
        ):
            assert key in stats
        assert stats["total_traffic"] > 0


class TestLiveEvents:
    def test_fail_event_kills_node(self, engine):
        engine.submit(sql=SQL, name="q-f")
        victim = 17
        result = engine.apply_event(
            {"type": "fail", "node": victim, "in_cycles": 2}
        )
        assert result == {"event": "fail", "node": victim, "at_cycle": 2}
        engine.step(4)
        assert not engine.topology.nodes[victim].alive
        assert engine.events_applied == 1

    def test_move_event_relocates_node(self, engine):
        result = engine.apply_event({"type": "move", "node": 5, "radius": 0.3})
        assert result["event"] == "move"
        assert result["moved"] >= 1

    def test_drift_event_switches_data_source(self, engine):
        engine.submit(sql=SQL, name="q-d")
        engine.step(2)
        result = engine.apply_event({"type": "drift", "sigma_st": 0.05})
        assert result["switch_cycle"] == 2
        assert engine.data_source.switched is not None
        assert engine.data_source.switched.sigma_st == 0.05
        engine.step(2)  # keeps running on the drifted distribution

    def test_unknown_event_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.apply_event({"type": "reboot"})
