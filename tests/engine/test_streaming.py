"""Streaming persistence: flush windows, interrupt/resume, store ownership.

The crash-safety contract under test: results are committed to the store in
bounded flush windows *as they arrive*, so killing a sweep after K completed
runs leaves at least ``K - flush_every`` of them persisted, and a resumed
invocation re-executes only the remainder while producing aggregates
bit-identical to an uninterrupted serial run.
"""

import sqlite3

import pytest

from repro.engine import (
    SCALES,
    ResultStore,
    ScenarioSpec,
    SweepRunner,
    WorkerPool,
)

SMOKE = SCALES["smoke"]
METRICS = ("total_traffic", "base_traffic", "max_node_load")


def streaming_scenario(name="streaming-test"):
    """12 runs over 2 grid points -- enough for several flush windows."""
    return ScenarioSpec(
        name=name,
        query="query1",
        algorithms=("naive", "base", "innet"),
        data={"ratio": "1/2:1/2", "sigma_st": 0.2},
        grid={"sigma_st": [0.2, 0.05]},
        runs=2,
        cycles=5,
    )


def _aggregate_table(sweep):
    table = {}
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            key = (tuple(sorted(group.setting.items())), algorithm)
            table[key] = {
                metric: (aggregate.mean(metric), aggregate.confidence_95(metric))
                for metric in METRICS
            }
    return table


class _InterruptAfter:
    """Progress callback that raises KeyboardInterrupt after K results,
    mimicking a SIGINT landing mid-sweep."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.seen = 0

    def __call__(self, done, total, spec) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt


class TestStreamingPersistence:
    def test_parallel_streaming_matches_serial_aggregates(self, tmp_path):
        scenario = streaming_scenario()
        serial = SweepRunner(jobs=1).run(scenario, SMOKE)
        with ResultStore(tmp_path / "results.sqlite") as store:
            with WorkerPool(2) as pool:
                parallel = SweepRunner(jobs=2, pool=pool, adaptive=False,
                                       store=store, flush_every=2).run(
                    scenario, SMOKE)
            assert parallel.executed == 12
            assert store.scenario_run_count(scenario.name) == 12
        assert _aggregate_table(serial) == _aggregate_table(parallel)

    def test_results_stream_within_flush_window(self, tmp_path):
        """At every progress call the store trails by less than one window."""
        scenario = streaming_scenario()
        store = ResultStore(tmp_path / "results.sqlite")
        flush_every = 3
        observed = []

        def probe(done, total, spec):
            observed.append((done, store.scenario_run_count(scenario.name)))

        with store:
            SweepRunner(store=store, flush_every=flush_every,
                        progress=probe).run(scenario, SMOKE)
            assert store.scenario_run_count(scenario.name) == 12
        assert observed
        for done, persisted in observed:
            assert persisted >= done - flush_every

    def test_interrupt_loses_at_most_one_flush_window(self, tmp_path):
        """The SIGINT regression: kill after K runs, resume the remainder."""
        scenario = streaming_scenario("streaming-interrupt")
        kill_after, flush_every = 7, 3
        reference = SweepRunner(jobs=1).run(scenario, SMOKE)

        store = ResultStore(tmp_path / "results.sqlite")
        with store:
            interrupted = SweepRunner(
                store=store, flush_every=flush_every,
                progress=_InterruptAfter(kill_after),
            )
            with pytest.raises(KeyboardInterrupt):
                interrupted.run(scenario, SMOKE)
            persisted = store.scenario_run_count(scenario.name)
            assert persisted >= kill_after - flush_every
            assert persisted < 12

            resumed = SweepRunner(store=store).run(scenario, SMOKE)
        assert resumed.from_store == persisted
        assert resumed.from_store >= kill_after - flush_every
        assert resumed.executed == 12 - persisted
        # resumed aggregates are bit-identical to the uninterrupted serial run
        assert _aggregate_table(resumed) == _aggregate_table(reference)

    def test_parallel_interrupt_then_serial_resume(self, tmp_path):
        scenario = streaming_scenario("streaming-interrupt-parallel")
        reference = SweepRunner(jobs=1).run(scenario, SMOKE)
        store = ResultStore(tmp_path / "results.sqlite")
        with store:
            with WorkerPool(2) as pool:
                interrupted = SweepRunner(
                    jobs=2, pool=pool, adaptive=False, store=store,
                    flush_every=2, progress=_InterruptAfter(5),
                )
                with pytest.raises(KeyboardInterrupt):
                    interrupted.run(scenario, SMOKE)
                # the abandoned dispatch must not leave workers grinding
                # through the rest of the sweep in the background
                assert not pool.started
            persisted = store.scenario_run_count(scenario.name)
            assert persisted >= 5 - 2
            resumed = SweepRunner(store=store).run(scenario, SMOKE)
        assert resumed.from_store == persisted
        assert resumed.executed == 12 - persisted
        assert _aggregate_table(resumed) == _aggregate_table(reference)

    def test_resume_executes_zero_on_warm_store(self, tmp_path):
        scenario = streaming_scenario("streaming-warm")
        with ResultStore(tmp_path / "results.sqlite") as store:
            SweepRunner(store=store).run(scenario, SMOKE)
            warm = SweepRunner(store=store).run(scenario, SMOKE)
        assert (warm.executed, warm.from_store) == (0, 12)


class TestStoreOwnership:
    def test_runner_closes_store_it_created_from_path(self, tmp_path):
        path = tmp_path / "owned.sqlite"
        scenario = streaming_scenario("ownership").with_overrides(
            algorithms=("naive",), grid={}, runs=1,
        )
        with SweepRunner(store=path) as runner:
            runner.run(scenario, SMOKE)
            assert not runner.store.closed
        assert runner.store.closed
        with pytest.raises(sqlite3.ProgrammingError):
            runner.store.scenarios()

    def test_close_is_idempotent(self, tmp_path):
        runner = SweepRunner(store=tmp_path / "owned.sqlite")
        runner.close()
        runner.close()
        assert runner.store.closed

    def test_explicit_store_stays_open(self, tmp_path):
        with ResultStore(tmp_path / "shared.sqlite") as store:
            with SweepRunner(store=store) as runner:
                runner.run(streaming_scenario("shared").with_overrides(
                    algorithms=("naive",), grid={}, runs=1), SMOKE)
            assert not store.closed
            assert store.scenarios() == ["shared"]

    def test_storeless_runner_close_is_a_noop(self):
        with SweepRunner() as runner:
            assert runner.store is None
