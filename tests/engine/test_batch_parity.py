"""Batch-cycle kernel parity: batched runs are bit-identical to per-tuple.

The acceptance bar of the batch-cycle kernel: on the fig02/fig14/fig18
smoke workloads -- including lossy links, instrumentation sinks, failure
phases and mobility phases -- every traffic figure produced with
``batch_cycles=True`` (the default) equals the per-tuple reference
(``batch_cycles=False``) exactly, and the knob stays out of the run key so
stored per-tuple results resume under the batched engine.
"""

import pytest

from repro.engine import SCALES, ScenarioSpec, execute_run
from repro.experiments.scenarios import BUILTIN_SCENARIOS

SMOKE = SCALES["smoke"]

TRAFFIC_FIELDS = ("total_traffic", "initiation_traffic", "computation_traffic",
                  "base_traffic", "max_node_load", "messages_dropped",
                  "queue_drops", "results_produced", "results_delivered")


def _traffic_view(report):
    return tuple(getattr(report, field) for field in TRAFFIC_FIELDS) + (
        tuple(sorted(report.traffic_by_kind.items())),
        tuple(report.top_loaded_nodes),
        tuple(sorted(report.extra.items())),
    )


def _compare(scenario: ScenarioSpec, limit=None):
    batched = scenario.expand(SMOKE)
    reference = scenario.with_overrides(batch_cycles=False).expand(SMOKE)
    assert len(batched) == len(reference)
    if limit is not None:
        batched, reference = batched[:limit], reference[:limit]
    for spec_on, spec_off in zip(batched, reference):
        report_on = execute_run(spec_on).report
        report_off = execute_run(spec_off).report
        assert _traffic_view(report_on) == _traffic_view(report_off), (
            f"batch/per-tuple divergence: {spec_on.algorithm} "
            f"{spec_on.setting_dict()}"
        )


class TestBatchParity:
    def test_fig02_smoke_subset(self):
        _compare(BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            algorithms=("naive", "base", "innet-cmpg", "ght"),
            grid={"ratio": ["1/2:1/2"], "sigma_st": [0.2]},
        ))

    def test_fig02_smoke_lossy_links(self):
        _compare(BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            algorithms=("naive", "base", "innet-cmpg"),
            grid={"ratio": ["1/2:1/2"], "sigma_st": [0.2]},
            link_loss=0.2,
        ))

    def test_fig14_smoke_failure_phases(self):
        """Mid-run failure injection drops back to the per-tuple reference
        path automatically -- and still matches it exactly."""
        _compare(BUILTIN_SCENARIOS["fig14-smoke"]())

    def test_fig18_mesh_at_smoke_scale(self):
        _compare(BUILTIN_SCENARIOS["fig18"](), limit=6)

    def test_instrumented_lossy_run(self):
        _compare(BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            algorithms=("naive", "innet-cmpg"),
            grid={"ratio": ["1/2:1/2"], "sigma_st": [0.2]},
            link_loss=0.15,
            sinks=({"sink": "energy", "capacity_uj": 20_000.0},
                   "hotspots", "latency"),
        ))


class TestRosterParity:
    """Every strategy batched by the tree-traffic kernel stays bit-identical
    to its per-tuple reference -- on perfect links (the vectorized lossless
    formulations) and on lossy links (the captured-shipping stream)."""

    def test_fig05_innet_family_perfect(self):
        _compare(BUILTIN_SCENARIOS["fig05"]())

    def test_fig05_innet_family_lossy(self):
        _compare(BUILTIN_SCENARIOS["fig05"]().with_overrides(link_loss=0.2))

    def test_fig09a_ght_perfect(self):
        _compare(BUILTIN_SCENARIOS["fig09a"]())

    def test_fig09a_ght_lossy(self):
        _compare(BUILTIN_SCENARIOS["fig09a"]().with_overrides(link_loss=0.15))

    def test_table3_yang07_perfect(self):
        _compare(BUILTIN_SCENARIOS["table3"]())

    def test_table3_yang07_lossy(self):
        _compare(BUILTIN_SCENARIOS["table3"]().with_overrides(link_loss=0.2))

    def test_scale_ladder_roster_rung(self):
        """The full 9-strategy roster on the keyed ladder workload at the
        1k rung (larger rungs are covered by the crossover smoke)."""
        _compare(BUILTIN_SCENARIOS["scale-ladder-smoke"]().with_overrides(
            grid={"num_nodes": [1_000], "ratio": ["1/2:1/2"]},
        ))

    def test_strategy_crossover_smoke(self):
        _compare(BUILTIN_SCENARIOS["strategy-crossover-smoke"]())

    def test_strategy_crossover_smoke_lossy(self):
        _compare(BUILTIN_SCENARIOS["strategy-crossover-smoke"]()
                 .with_overrides(link_loss=0.2, grid={
                     "num_nodes": [1_000], "ratio": ["1/2:1/2"],
                     "sigma_st": [0.2],
                 }))


class TestBatchKnob:
    def test_default_batched_run_keeps_per_tuple_run_key(self):
        scenario = ScenarioSpec(name="plain", query="query1",
                                algorithms=("naive",), cycles=3)
        batched = scenario.expand(SMOKE)[0]
        reference = scenario.with_overrides(batch_cycles=False).expand(SMOKE)[0]
        assert batched.batch_cycles and not reference.batch_cycles
        assert batched.run_key() != reference.run_key()
        payload = batched.to_dict()
        assert payload["batch_cycles"] is True
        # scenario spec hashes are stable across the kernel's introduction
        assert "batch_cycles" not in scenario.to_dict()
        assert "batch_cycles" in \
            scenario.with_overrides(batch_cycles=False).to_dict()

    def test_batch_cycles_grid_axis(self):
        scenario = ScenarioSpec(
            name="knob-sweep", query="query1", algorithms=("naive",),
            runs=1, cycles=3, grid={"batch_cycles": [True, False]},
        )
        specs = scenario.expand(SMOKE)
        assert [spec.batch_cycles for spec in specs] == [True, False]

    def test_scenario_round_trip(self):
        scenario = ScenarioSpec(name="ref", query="query1",
                                algorithms=("naive",), batch_cycles=False)
        clone = ScenarioSpec.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.batch_cycles is False
