"""Tests for ScenarioSpec / RunSpec: expansion, round-tripping, hashing."""

import json

import pytest

from repro.engine import SCALES, RunSpec, ScenarioSpec, load_scenario_file
from repro.engine.spec import freeze, thaw

SMOKE = SCALES["smoke"]


def fig2_smoke_scenario(**overrides):
    base = dict(
        name="fig02-test",
        query="query1",
        algorithms=("naive", "base"),
        data={"ratio": "1/2:1/2", "sigma_st": 0.2},
        grid={"ratio": ["1/10:1", "1/2:1/2"], "sigma_st": [0.2, 0.05]},
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestFreeze:
    def test_round_trip_nested(self):
        payload = {"a": [1, 2, {"b": 3}], "c": {"d": [4.5]}}
        assert thaw(freeze(payload)) == payload

    def test_frozen_is_hashable(self):
        hash(freeze({"a": [1, 2], "b": {"c": 3}}))


class TestExpansion:
    def test_grid_cartesian_product(self):
        specs = fig2_smoke_scenario().expand(SMOKE)
        # 2 ratios x 2 sigma_st x 2 algorithms x 1 smoke run
        assert len(specs) == 8
        settings = [spec.setting_dict() for spec in specs]
        assert settings[0] == {"ratio": "1/10:1", "sigma_st": 0.2}
        # declaration order: ratio is the outer axis
        assert settings[-1] == {"ratio": "1/2:1/2", "sigma_st": 0.05}

    def test_ratio_resolves_sigmas(self):
        spec = fig2_smoke_scenario().expand(SMOKE)[0]
        assert (spec.sigma_s, spec.sigma_t, spec.sigma_st) == (0.1, 1.0, 0.2)
        # assumed defaults to the data selectivities
        assert spec.assumed_sigma_s == spec.sigma_s

    def test_scale_resolves_runs_cycles_nodes(self):
        specs = fig2_smoke_scenario(grid={}).expand(SCALES["default"])
        assert len(specs) == SCALES["default"].runs * 2
        assert specs[0].cycles == SCALES["default"].cycles
        assert specs[0].num_nodes == SCALES["default"].num_nodes
        assert {spec.run_index for spec in specs} == {0, 1}

    def test_explicit_cycles_beat_scale(self):
        spec = fig2_smoke_scenario(grid={}, cycles=7, runs=1).expand(SMOKE)[0]
        assert spec.cycles == 7

    def test_use_long_cycles_resolves_scale_long_cycles(self):
        spec = fig2_smoke_scenario(grid={}, use_long_cycles=True).expand(SMOKE)[0]
        assert spec.cycles == SMOKE.long_cycles
        # an explicit cycle count still wins
        spec = fig2_smoke_scenario(grid={}, use_long_cycles=True,
                                   cycles=7).expand(SMOKE)[0]
        assert spec.cycles == 7

    def test_sigma_grid_overrides_ratio_data(self):
        # explicit sigma_s axis values must win over the ratio-derived ones
        specs = fig2_smoke_scenario(grid={"sigma_s": [0.1, 0.9]}).expand(SMOKE)
        assert sorted({spec.sigma_s for spec in specs}) == [0.1, 0.9]
        assert all(spec.sigma_t == 0.5 for spec in specs)  # from the ratio

    def test_failure_fraction_resolved_against_cycles(self):
        scenario = fig2_smoke_scenario(
            grid={}, cycles=40, failures=({"node": 9, "at_fraction": 0.5},),
        )
        assert scenario.expand(SMOKE)[0].failures == ((9, 20),)

    def test_unknown_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown grid axis"):
            fig2_smoke_scenario(grid={"bogus": [1]})

    def test_bad_accounting_rejected(self):
        with pytest.raises(ValueError, match="accounting"):
            fig2_smoke_scenario(accounting="parsecs")


class TestRoundTrip:
    def test_dict_round_trip(self):
        scenario = fig2_smoke_scenario()
        clone = ScenarioSpec.from_dict(scenario.to_dict())
        assert clone.to_dict() == scenario.to_dict()
        assert clone.spec_hash() == scenario.spec_hash()

    def test_json_round_trip(self):
        scenario = fig2_smoke_scenario()
        clone = ScenarioSpec.from_json(scenario.to_json())
        assert clone == scenario
        assert hash(clone) == hash(scenario)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"name": "x", "quarks": 3})

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(fig2_smoke_scenario().to_json())
        assert load_scenario_file(path) == fig2_smoke_scenario()

    def test_load_toml_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            'query = "query1"\n'
            'algorithms = ["naive"]\n'
            "[data]\n"
            'ratio = "1/2:1/2"\n'
            "sigma_st = 0.2\n"
        )
        scenario = load_scenario_file(path)
        assert scenario.name == "s"  # defaults to the file stem
        assert scenario.algorithms == ("naive",)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("{}")
        with pytest.raises(ValueError, match="unsupported scenario file type"):
            load_scenario_file(path)


class TestHashing:
    def test_run_key_stable_across_round_trip(self):
        spec = fig2_smoke_scenario().expand(SMOKE)[0]
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.run_key() == spec.run_key()

    def test_run_key_differs_per_run(self):
        specs = fig2_smoke_scenario().expand(SMOKE)
        assert len({spec.run_key() for spec in specs}) == len(specs)

    def test_run_key_sensitive_to_workload(self):
        a = fig2_smoke_scenario().expand(SMOKE)[0]
        b = fig2_smoke_scenario(topology_seed=1).expand(SMOKE)[0]
        assert a.run_key() != b.run_key()

    def test_scenario_spec_hash_is_content_hash(self):
        assert fig2_smoke_scenario().spec_hash() == fig2_smoke_scenario().spec_hash()
        assert (fig2_smoke_scenario().spec_hash()
                != fig2_smoke_scenario(cycles=3).spec_hash())


class TestScaleFromEnv:
    def test_blank_env_means_default(self, monkeypatch):
        from repro.engine import scale_from_env

        monkeypatch.setenv("REPRO_SCALE", "   ")
        assert scale_from_env().name == "default"

    def test_unknown_env_rejected_with_preset_list(self, monkeypatch):
        from repro.engine import scale_from_env

        monkeypatch.setenv("REPRO_SCALE", "warp")
        with pytest.raises(KeyError, match="warp"):
            scale_from_env()

    def test_resolve_scale_case_insensitive(self):
        from repro.engine import resolve_scale

        assert resolve_scale("SMOKE").name == "smoke"
        with pytest.raises(KeyError, match="expected one of"):
            resolve_scale("warp")


class TestCompositeAndVariantAxes:
    def test_composite_axis_flattens_joint_overrides(self):
        scenario = fig2_smoke_scenario(grid={
            "workload": [{"query": "query1", "sigma_st": 0.05},
                         {"query": "query2", "sigma_st": 0.10}],
        })
        specs = scenario.expand(SMOKE)
        settings = {(s.query, s.sigma_st) for s in specs}
        assert settings == {("query1", 0.05), ("query2", 0.10)}

    def test_composite_axis_rejects_unknown_keys_for_join_kind(self):
        with pytest.raises(ValueError, match="composite grid axis"):
            fig2_smoke_scenario(grid={"workload": [{"quarks": 3}]})

    def test_true_and_assumed_ratio_axes_are_independent(self):
        scenario = fig2_smoke_scenario(
            algorithms=("innet",),
            grid={"true_ratio": ["1/10:1"], "assumed_ratio": ["1:1/10"]},
        )
        spec = scenario.expand(SMOKE)[0]
        assert (spec.sigma_s, spec.sigma_t) == (0.1, 1.0)
        assert (spec.assumed_sigma_s, spec.assumed_sigma_t) == (1.0, 0.1)

    def test_variants_replace_algorithm_expansion(self):
        scenario = fig2_smoke_scenario(
            grid={},
            variants=(
                {"label": "plain", "algorithm": "naive"},
                {"label": "half", "algorithm": "naive",
                 "cycles_span": (0.0, 0.5), "workload_seed_offset": 3},
            ),
        )
        specs = scenario.expand(SMOKE)
        assert [s.display_label for s in specs] == ["plain", "half"]
        assert specs[1].cycles == SMOKE.cycles // 2
        assert specs[1].workload_seed == specs[0].workload_seed + 3

    def test_unknown_variant_key_rejected(self):
        with pytest.raises(ValueError, match="unknown variant field"):
            fig2_smoke_scenario(variants=({"label": "x", "quarks": 1},))

    def test_cycles_factor_scales_resolved_cycles(self):
        scenario = fig2_smoke_scenario(grid={"cycles_factor": [1, 2]})
        specs = scenario.expand(SMOKE)
        assert sorted({s.cycles for s in specs}) == [SMOKE.cycles, 2 * SMOKE.cycles]

    def test_min_cycles_floor(self):
        spec = fig2_smoke_scenario(grid={}, min_cycles=25).expand(SMOKE)[0]
        assert spec.cycles == 25
