"""Engine integration of the instrumentation pipeline.

Covers the PR's acceptance bar: with default sinks the engine's traffic
output is bit-identical to uninstrumented execution on the fig02/fig14
smoke workloads, sink configs round-trip through spec serialization and the
result store (including the per-node metrics table), and empty-sink runs
keep their pre-metrics content hash so existing stores stay valid.
"""

import pytest

from repro.engine import (
    SCALES,
    ResultStore,
    ScenarioSpec,
    SweepRunner,
    execute_run,
)
from repro.engine.spec import ENGINE_VERSION, RunSpec, content_hash
from repro.engine.store import report_from_dict, report_to_dict
from repro.experiments.scenarios import BUILTIN_SCENARIOS

SMOKE = SCALES["smoke"]

TRAFFIC_FIELDS = ("total_traffic", "initiation_traffic", "computation_traffic",
                  "base_traffic", "max_node_load", "messages_dropped",
                  "queue_drops", "results_produced", "results_delivered")


def _instrumented(scenario: ScenarioSpec) -> ScenarioSpec:
    return scenario.with_overrides(
        sinks=({"sink": "energy", "capacity_uj": 20_000.0}, "hotspots",
               "latency"),
    )


def _traffic_view(report):
    return tuple(getattr(report, field) for field in TRAFFIC_FIELDS) + (
        tuple(sorted(report.traffic_by_kind.items())),
        tuple(report.top_loaded_nodes),
    )


class TestTrafficBitIdentity:
    def _compare(self, scenario: ScenarioSpec):
        plain = scenario.expand(SMOKE)
        instrumented = _instrumented(scenario).expand(SMOKE)
        assert len(plain) == len(instrumented)
        for spec_plain, spec_inst in zip(plain, instrumented):
            report_plain = execute_run(spec_plain).report
            report_inst = execute_run(spec_inst).report
            assert _traffic_view(report_plain) == _traffic_view(report_inst)
            markers = ("energy_", "hotspot_", "latency_")
            assert report_plain.extra == {
                key: value for key, value in report_inst.extra.items()
                if not any(marker in key for marker in markers)
            }
            assert report_inst.node_series

    def test_fig02_smoke_subset(self):
        scenario = BUILTIN_SCENARIOS["fig02-smoke"]().with_overrides(
            algorithms=("naive", "base", "innet-cmpg"),
            grid={"ratio": ["1/2:1/2"], "sigma_st": [0.2]},
        )
        self._compare(scenario)

    def test_fig14_smoke_phased(self):
        """Multi-phase runs (failure injection) stay bit-identical too, and
        gain per-phase sink snapshots."""
        scenario = BUILTIN_SCENARIOS["fig14-smoke"]()
        self._compare(scenario)
        spec = next(s for s in _instrumented(scenario).expand(SMOKE) if s.phases)
        report = execute_run(spec).report
        phase_keys = [key for key in report.extra
                      if key.startswith("phase_") and "energy_" in key]
        assert phase_keys  # cumulative energy snapshotted at phase boundaries


class TestSpecSinks:
    def test_scenario_round_trip_with_sinks(self):
        scenario = ScenarioSpec(
            name="with-sinks", query="query1", algorithms=("naive",),
            sinks=("energy", {"sink": "hotspots", "top_k": 5}),
        )
        clone = ScenarioSpec.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.sinks == scenario.sinks

    def test_runspec_round_trip_with_sinks(self):
        scenario = ScenarioSpec(
            name="with-sinks", query="query1", algorithms=("naive",), cycles=3,
            sinks=({"sink": "energy", "capacity_uj": 1000.0},),
        )
        spec = scenario.expand(SMOKE)[0]
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.run_key() == spec.run_key()
        assert clone.sink_entries() == [{"sink": "energy", "capacity_uj": 1000.0}]

    def test_empty_sinks_keep_pre_metrics_hash(self):
        """Stored results from before the metrics subsystem stay valid.

        Pre-metrics payloads carry neither the ``sinks`` nor the
        ``batch_cycles`` nor the ``node_series_cap`` knob; all three are
        excluded from the run key at their defaults, so the historical
        content hashes remain addressable.
        """
        scenario = ScenarioSpec(name="plain", query="query1",
                                algorithms=("naive",), cycles=3)
        spec = scenario.expand(SMOKE)[0]
        legacy_payload = spec.to_dict()
        del legacy_payload["sinks"]
        del legacy_payload["batch_cycles"]
        del legacy_payload["node_series_cap"]
        legacy_payload["engine_version"] = ENGINE_VERSION
        assert spec.run_key() == content_hash(legacy_payload)

    def test_sinks_change_the_run_key(self):
        base = ScenarioSpec(name="plain", query="query1",
                            algorithms=("naive",), cycles=3)
        plain = base.expand(SMOKE)[0]
        instrumented = base.with_overrides(sinks=("energy",)).expand(SMOKE)[0]
        assert plain.run_key() != instrumented.run_key()

    def test_sinks_grid_axis_sweeps_battery_capacities(self):
        scenario = ScenarioSpec(
            name="capacity-sweep", query="query1", algorithms=("naive",),
            runs=1, cycles=3,
            grid={"sinks": [
                [{"sink": "energy", "capacity_uj": 100.0}],
                [{"sink": "energy", "capacity_uj": 200.0}],
            ]},
        )
        specs = scenario.expand(SMOKE)
        assert len(specs) == 2
        capacities = {spec.sink_entries()[0]["capacity_uj"] for spec in specs}
        assert capacities == {100.0, 200.0}
        assert len({spec.run_key() for spec in specs}) == 2

    def test_grid_axis_sinks_still_produce_summary_rows(self):
        """Summary rows key off the reports, not the (empty) scenario-level
        sinks field, so a sinks grid axis is reported too."""
        from repro.experiments.report import sink_summary_rows

        scenario = ScenarioSpec(
            name="capacity-sweep", query="query1", algorithms=("naive",),
            runs=1, cycles=3,
            grid={"sinks": [
                [{"sink": "energy", "capacity_uj": 100.0}],
                [{"sink": "energy", "capacity_uj": 200.0}],
            ]},
        )
        with SweepRunner() as runner:
            sweep = runner.run(scenario, SMOKE)
        rows = sink_summary_rows(sweep)
        assert len(rows) == 2
        assert all("energy_total_uj" in row for row in rows)

    def test_cli_all_group_never_duplicates_sinks(self):
        """--metrics all on a scenario with its own sinks adds only the
        missing members."""
        from repro.experiments.cli import _apply_metric_sinks

        scenario = ScenarioSpec(
            name="dedupe", query="query1", algorithms=("naive",),
            sinks=("energy", "hotspots"),
        )
        augmented = _apply_metric_sinks(scenario, ("all",))
        assert augmented.sinks == ("energy", "hotspots", "latency")
        # idempotent once everything is present
        assert _apply_metric_sinks(augmented, ("all",)) is augmented
        # deduplication also applies within the request itself
        plain = ScenarioSpec(name="dedupe2", query="query1",
                             algorithms=("naive",))
        assert _apply_metric_sinks(plain, ("all", "energy", "energy")).sinks \
            == ("energy", "hotspots", "latency")

    def test_malformed_sink_entry_rejected(self):
        with pytest.raises(ValueError, match="'sink' key"):
            ScenarioSpec(name="bad", sinks=({"capacity_uj": 1.0},))
        with pytest.raises(TypeError, match="preset name or a mapping"):
            ScenarioSpec(name="bad", sinks=(42,))


class TestStoreRoundTrip:
    def _instrumented_spec(self):
        scenario = ScenarioSpec(
            name="metrics-store", query="query1", algorithms=("naive",),
            cycles=3, sinks=("energy", "hotspots"),
        )
        return scenario.expand(SMOKE)[0]

    def test_report_dict_round_trip_with_node_series(self):
        report = execute_run(self._instrumented_spec()).report
        assert report.node_series
        clone = report_from_dict(report_to_dict(report))
        assert clone == report

    def test_store_round_trip_and_node_metrics_table(self, tmp_path):
        spec = self._instrumented_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            key = store.put(spec, report)
            loaded = store.get(key)
            assert loaded == report
            assert loaded.node_series == report.node_series
            rows = store.node_metrics(run_key=key, series="energy_uj")
            assert len(rows) == len(report.node_series["energy.energy_uj"])
            by_node = {row["node_id"]: row["value"] for row in rows}
            assert by_node == report.node_series["energy.energy_uj"]
            assert rows[0]["scenario"] == "metrics-store"
            assert rows[0]["sink"] == "energy"
            assert store.node_metrics_count() == (
                len(report.node_series["energy.energy_uj"])
                + len(report.node_series["hotspot.load"])
            )
            assert store.node_metrics_count(scenario="other") == 0

    def test_overwrite_replaces_node_metrics(self, tmp_path):
        spec = self._instrumented_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.put(spec, report)
            before = store.node_metrics_count()
            store.put(spec, report)  # INSERT OR REPLACE path
            assert store.node_metrics_count() == before

    def test_sweep_persists_node_metrics_via_streaming_writer(self, tmp_path):
        scenario = ScenarioSpec(
            name="metrics-sweep", query="query1", algorithms=("naive", "base"),
            runs=1, cycles=3, sinks=("energy",),
        )
        with SweepRunner(store=str(tmp_path / "results.sqlite")) as runner:
            sweep = runner.run(scenario, SMOKE)
            assert sweep.executed == 2
        with ResultStore(tmp_path / "results.sqlite") as store:
            assert store.node_metrics_count(scenario="metrics-sweep") > 0
