"""Tests for the SQLite result store and the streaming batch writer."""

import pytest

from repro.engine import SCALES, ResultStore, ScenarioSpec, StreamingWriter, execute_run
from repro.engine.store import report_from_dict, report_to_dict

SMOKE = SCALES["smoke"]


def _one_spec():
    scenario = ScenarioSpec(
        name="store-test", query="query1", algorithms=("naive",),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2}, cycles=3,
    )
    return scenario.expand(SMOKE)[0]


class TestResultStore:
    def test_wal_mode(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            assert store.journal_mode() == "wal"

    def test_put_get_round_trip(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            key = store.put(spec, report)
            assert key == spec.run_key()
            assert key in store
            loaded = store.get(key)
        assert loaded == report
        assert loaded.top_loaded_nodes == report.top_loaded_nodes

    def test_completed_filters_known_keys(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.put(spec, report)
            assert store.completed([spec.run_key(), "missing"]) == {spec.run_key()}
            assert store.get("missing") is None

    def test_scenario_bookkeeping(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.put(spec, report)
            assert store.scenarios() == ["store-test"]
            assert store.scenario_run_count("store-test") == 1
            assert store.scenario_run_count("other") == 0

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "results.sqlite"
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(path) as store:
            store.put(spec, report)
        with ResultStore(path) as store:
            assert store.get(spec.run_key()) == report

    def test_report_dict_round_trip(self):
        report = execute_run(_one_spec()).report
        assert report_from_dict(report_to_dict(report)) == report

    def test_close_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        assert not store.closed
        store.close()
        store.close()
        assert store.closed

    def test_flush_commits(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.flush()  # no open transaction: plain no-op commit


class TestStreamingWriter:
    def _spec_and_report(self):
        spec = _one_spec()
        return spec, execute_run(spec).report

    def test_flushes_at_count_threshold(self, tmp_path):
        spec, report = self._spec_and_report()
        with ResultStore(tmp_path / "results.sqlite") as store:
            writer = StreamingWriter(store, flush_every=2, flush_seconds=1e9)
            writer.add(spec, report)
            assert (writer.pending, writer.written) == (1, 0)
            assert spec.run_key() not in store
            writer.add(spec, report)  # same key: INSERT OR REPLACE, 2 writes
            assert (writer.pending, writer.written, writer.flushes) == (0, 2, 1)
            assert spec.run_key() in store

    def test_flushes_at_time_threshold(self, tmp_path, monkeypatch):
        import repro.engine.store as store_module

        clock = [0.0]
        monkeypatch.setattr(store_module.time, "monotonic", lambda: clock[0])
        spec, report = self._spec_and_report()
        with ResultStore(tmp_path / "results.sqlite") as store:
            writer = StreamingWriter(store, flush_every=100, flush_seconds=5.0)
            writer.add(spec, report)
            assert writer.pending == 1
            clock[0] = 6.0
            writer.add(spec, report)
            assert writer.pending == 0
            assert writer.written == 2

    def test_context_manager_flushes_remainder(self, tmp_path):
        spec, report = self._spec_and_report()
        with ResultStore(tmp_path / "results.sqlite") as store:
            with StreamingWriter(store, flush_every=100) as writer:
                writer.add(spec, report)
            assert writer.pending == 0
            assert spec.run_key() in store

    def test_empty_flush_is_a_noop(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            writer = StreamingWriter(store)
            writer.flush()
            assert (writer.written, writer.flushes) == (0, 0)

    def test_rejects_degenerate_windows(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            with pytest.raises(ValueError, match="flush_every"):
                StreamingWriter(store, flush_every=0)
            with pytest.raises(ValueError, match="flush_seconds"):
                StreamingWriter(store, flush_seconds=0)
