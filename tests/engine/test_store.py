"""Tests for the SQLite result store."""

from repro.engine import SCALES, ResultStore, ScenarioSpec, execute_run
from repro.engine.store import report_from_dict, report_to_dict

SMOKE = SCALES["smoke"]


def _one_spec():
    scenario = ScenarioSpec(
        name="store-test", query="query1", algorithms=("naive",),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2}, cycles=3,
    )
    return scenario.expand(SMOKE)[0]


class TestResultStore:
    def test_wal_mode(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            assert store.journal_mode() == "wal"

    def test_put_get_round_trip(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            key = store.put(spec, report)
            assert key == spec.run_key()
            assert key in store
            loaded = store.get(key)
        assert loaded == report
        assert loaded.top_loaded_nodes == report.top_loaded_nodes

    def test_completed_filters_known_keys(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.put(spec, report)
            assert store.completed([spec.run_key(), "missing"]) == {spec.run_key()}
            assert store.get("missing") is None

    def test_scenario_bookkeeping(self, tmp_path):
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(tmp_path / "results.sqlite") as store:
            store.put(spec, report)
            assert store.scenarios() == ["store-test"]
            assert store.scenario_run_count("store-test") == 1
            assert store.scenario_run_count("other") == 0

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "results.sqlite"
        spec = _one_spec()
        report = execute_run(spec).report
        with ResultStore(path) as store:
            store.put(spec, report)
        with ResultStore(path) as store:
            assert store.get(spec.run_key()) == report

    def test_report_dict_round_trip(self):
        report = execute_run(_one_spec()).report
        assert report_from_dict(report_to_dict(report)) == report
