"""Tests for RunResult / AggregateResult metric access."""

import pytest

from repro.engine import SCALES, ScenarioSpec, execute_run

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def run_result():
    scenario = ScenarioSpec(
        name="results-test", query="query1", algorithms=("naive",),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2}, cycles=3,
    )
    return execute_run(scenario.expand(SMOKE)[0])


class TestMetricAccess:
    def test_known_metric(self, run_result):
        assert run_result.metric("total_traffic") == run_result.report.total_traffic

    def test_unknown_metric_lists_available_fields(self, run_result):
        with pytest.raises(KeyError) as excinfo:
            run_result.metric("total_trafic")
        message = str(excinfo.value)
        assert "unknown metric 'total_trafic'" in message
        # the helpful part: every available report field is listed
        assert "total_traffic" in message
        assert "base_traffic" in message
