"""Tests for the persistent worker pool and the adaptive serial fallback."""

import pytest

from repro.engine import (
    SCALES,
    ScenarioSpec,
    SweepRunner,
    WorkerPool,
    effective_jobs,
    shared_pool,
    shutdown_shared_pools,
)
from repro.engine import pool as pool_module

SMOKE = SCALES["smoke"]


def tiny_scenario(name="pool-test", **overrides):
    base = dict(
        name=name,
        query="query1",
        algorithms=("naive", "base"),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
        runs=2,
        cycles=3,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestEffectiveJobs:
    def test_serial_requests_stay_serial(self):
        assert effective_jobs(1, 100) == 1
        assert effective_jobs(4, 1) == 1
        assert effective_jobs(4, 0) == 1

    def test_single_cpu_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module, "usable_cpus", lambda: 1)
        assert effective_jobs(4, 100) == 1

    def test_cheap_runs_fall_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module, "usable_cpus", lambda: 8)
        pool_module.reset_run_costs()
        try:
            pool_module.record_run_cost("cheap", pool_module.MIN_PARALLEL_RUN_S / 10)
            assert effective_jobs(4, 100, scenario="cheap") == 1
            pool_module.record_run_cost("costly", 1.0)
            assert effective_jobs(4, 100, scenario="costly") == 4
        finally:
            pool_module.reset_run_costs()

    def test_unknown_cost_is_optimistic(self, monkeypatch):
        monkeypatch.setattr(pool_module, "usable_cpus", lambda: 8)
        pool_module.reset_run_costs()
        assert effective_jobs(4, 100, scenario="never-ran") == 4
        assert effective_jobs(4, 3) == 3  # capped at the pending count

    def test_adaptive_false_always_honors_jobs(self, monkeypatch):
        monkeypatch.setattr(pool_module, "usable_cpus", lambda: 1)
        assert effective_jobs(4, 100, adaptive=False) == 4

    def test_cost_ema_blends_observations(self):
        pool_module.reset_run_costs()
        try:
            pool_module.record_run_cost("s", 1.0)
            pool_module.record_run_cost("s", 0.0)  # non-positive is ignored
            assert pool_module.estimated_run_cost("s") == 1.0
            pool_module.record_run_cost("s", 3.0)
            assert pool_module.estimated_run_cost("s") == pytest.approx(2.0)
            assert pool_module.estimated_run_cost(None) is None
        finally:
            pool_module.reset_run_costs()


class TestWorkerPool:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            WorkerPool(0)

    def test_lazy_start_and_close(self):
        with WorkerPool(2) as pool:
            assert not pool.started
            assert pool.worker_pids() == []
            results = dict(pool.imap_unordered(_double, [1, 2, 3]))
            assert results == {1: 2, 2: 4, 3: 6}
            assert pool.started
            assert pool.starts == 1
            assert pool.dispatched == 3
        assert not pool.started

    def test_reuse_across_dispatches_keeps_workers(self):
        with WorkerPool(2) as pool:
            list(pool.imap_unordered(_double, [1, 2]))
            pids = set(pool.worker_pids())
            list(pool.imap_unordered(_double, [3, 4]))
            assert set(pool.worker_pids()) == pids
            assert pool.starts == 1
            assert pool.dispatched == 4

    def test_pool_reused_across_two_sweeps(self):
        """A campaign's sweeps share one set of warm workers."""
        with WorkerPool(2) as pool:
            runner = SweepRunner(jobs=2, pool=pool, adaptive=False)
            first = runner.run(tiny_scenario("pool-sweep-a"), SMOKE)
            pids = set(pool.worker_pids())
            second = runner.run(tiny_scenario("pool-sweep-b", cycles=4), SMOKE)
            assert first.executed == second.executed == 4
            assert pool.starts == 1
            assert pool.dispatched == 8
            assert set(pool.worker_pids()) == pids

    def test_late_registration_restarts_workers(self):
        """A durable registration after fork must reach the workers."""
        from repro.engine import register_strategy
        from repro.engine.registry import STRATEGIES

        with WorkerPool(2) as pool:
            list(pool.imap_unordered(_double, [1, 2]))
            assert pool.starts == 1
            register_strategy("zlate-naive", lambda **kw: STRATEGIES.create("naive"))
            try:
                sweep = SweepRunner(jobs=2, pool=pool, adaptive=False).run(
                    tiny_scenario("late-reg", algorithms=("zlate-naive",)), SMOKE)
                assert sweep.executed == 2
                assert pool.starts == 2  # stale workers were replaced
            finally:
                del STRATEGIES.builders["zlate-naive"]

    def test_runner_records_scale_aware_cost_key(self):
        """The EMA key carries num_nodes/cycles, so a cheap smoke estimate
        cannot force a later paper-scale sweep of the same scenario serial."""
        pool_module.reset_run_costs()
        try:
            SweepRunner().run(tiny_scenario("cost-key"), SMOKE)
            (key,) = pool_module._COST_EMA
            assert key == ("cost-key", SMOKE.num_nodes, 3)
        finally:
            pool_module.reset_run_costs()

    def test_adaptive_fallback_never_starts_the_pool(self, monkeypatch):
        monkeypatch.setattr(pool_module, "usable_cpus", lambda: 1)
        with WorkerPool(2) as pool:
            sweep = SweepRunner(jobs=2, pool=pool).run(tiny_scenario(), SMOKE)
            assert sweep.executed == 4
            assert not pool.started
            assert pool.dispatched == 0


class TestSharedPool:
    def test_same_job_count_shares_one_pool(self):
        shutdown_shared_pools()
        try:
            assert shared_pool(2) is shared_pool(2)
            assert shared_pool(2) is not shared_pool(3)
        finally:
            shutdown_shared_pools()

    def test_shutdown_closes_and_forgets(self):
        pool = shared_pool(2)
        list(pool.imap_unordered(_double, [1]))
        shutdown_shared_pools()
        assert not pool.started
        assert shared_pool(2) is not pool
        shutdown_shared_pools()


def _double(value):
    return value, value * 2
