"""Tests for the SweepRunner: parallel == serial, resume, registries, caches."""

import pytest

from repro.engine import (
    SCALES,
    ResultStore,
    ScenarioSpec,
    SweepRunner,
    register_strategy,
    reset_workload_caches,
    workload_cache_stats,
)
from repro.engine.registry import STRATEGIES
from repro.engine.workload import TOPOLOGY_CACHE_MAX, build_topology
from repro.experiments.scenarios import BUILTIN_SCENARIOS, resolve_scenario

SMOKE = SCALES["smoke"]
METRICS = ("total_traffic", "base_traffic", "max_node_load")


def fig2_smoke_sweep():
    """A reduced Figure 2 sweep: 2 grid points x 3 algorithms."""
    return ScenarioSpec(
        name="fig02-runner-test",
        query="query1",
        algorithms=("naive", "base", "innet"),
        data={"ratio": "1/2:1/2", "sigma_st": 0.2},
        grid={"sigma_st": [0.2, 0.05]},
        runs=2,
        cycles=5,
    )


def _aggregate_table(sweep):
    table = {}
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            key = (tuple(sorted(group.setting.items())), algorithm)
            table[key] = {
                metric: (aggregate.mean(metric), aggregate.confidence_95(metric))
                for metric in METRICS
            }
    return table


class TestParallelEqualsSerial:
    def test_fig2_smoke_aggregates_identical(self):
        # adaptive=False forces the pool path even on single-CPU machines,
        # so the parity claim is about actual cross-process execution
        scenario = fig2_smoke_sweep()
        serial = SweepRunner(jobs=1).run(scenario, SMOKE)
        parallel = SweepRunner(jobs=2, adaptive=False).run(scenario, SMOKE)
        assert serial.executed == parallel.executed == 12
        # means AND CI95s must match the serial reference bit-for-bit
        assert _aggregate_table(serial) == _aggregate_table(parallel)

    def test_group_order_matches_grid_declaration(self):
        sweep = SweepRunner(jobs=2, adaptive=False).run(fig2_smoke_sweep(), SMOKE)
        assert [group.setting["sigma_st"] for group in sweep.groups] == [0.2, 0.05]
        for group in sweep.groups:
            assert list(group.aggregates) == ["naive", "base", "innet"]
            for aggregate in group.aggregates.values():
                assert [run.seed for run in aggregate.runs] == [0, 1]


class TestResume:
    def test_completed_runs_are_skipped(self, tmp_path):
        scenario = fig2_smoke_sweep()
        store = ResultStore(tmp_path / "results.sqlite")
        first = SweepRunner(jobs=1, store=store).run(scenario, SMOKE)
        assert (first.executed, first.from_store) == (12, 0)

        again = SweepRunner(jobs=2, store=store).run(scenario, SMOKE)
        assert (again.executed, again.from_store) == (0, 12)
        assert _aggregate_table(first) == _aggregate_table(again)

    def test_partial_resume_runs_only_missing(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        small = fig2_smoke_sweep().with_overrides(algorithms=("naive",))
        SweepRunner(store=store).run(small, SMOKE)

        full = SweepRunner(store=store).run(fig2_smoke_sweep(), SMOKE)
        assert full.from_store == 4     # the naive runs
        assert full.executed == 8       # base + innet

    def test_no_resume_re_executes(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        scenario = fig2_smoke_sweep()
        SweepRunner(store=store).run(scenario, SMOKE)
        forced = SweepRunner(store=store, resume=False).run(scenario, SMOKE)
        assert (forced.executed, forced.from_store) == (12, 0)

    def test_store_accepts_path(self, tmp_path):
        path = tmp_path / "sub" / "results.sqlite"
        runner = SweepRunner(store=path)
        runner.run(fig2_smoke_sweep().with_overrides(algorithms=("naive",)), SMOKE)
        assert path.exists()

    def test_changed_spec_misses_store(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        scenario = fig2_smoke_sweep()
        SweepRunner(store=store).run(scenario, SMOKE)
        changed = SweepRunner(store=store).run(
            scenario.with_overrides(cycles=6), SMOKE
        )
        assert changed.from_store == 0


class TestSweepResult:
    def test_only_requires_single_group(self):
        sweep = SweepRunner().run(fig2_smoke_sweep(), SMOKE)
        with pytest.raises(ValueError, match="grid point"):
            sweep.only()

    def test_rows_have_metric_columns(self):
        sweep = SweepRunner().run(fig2_smoke_sweep(), SMOKE)
        rows = sweep.rows()
        assert len(rows) == 6
        assert {"sigma_st", "algorithm", "total_traffic_kb",
                "total_traffic_ci95_kb"} <= set(rows[0])


class TestRegistries:
    def test_register_strategy_hook(self):
        @register_strategy("test-naive-alias")
        def _build(**kwargs):
            return STRATEGIES.create("naive")

        try:
            scenario = fig2_smoke_sweep().with_overrides(
                algorithms=("test-naive-alias",), grid={}, runs=1
            )
            sweep = SweepRunner().run(scenario, SMOKE)
            assert sweep.only()["test-naive-alias"].mean("total_traffic") > 0
        finally:
            del STRATEGIES.builders["test-naive-alias"]

    def test_unknown_algorithm_lists_choices(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            STRATEGIES.create("quantum-join")

    def test_builtin_scenarios_resolve_and_expand(self):
        for name in BUILTIN_SCENARIOS:
            scenario = resolve_scenario(name)
            assert scenario.expand(SMOKE)
        with pytest.raises(KeyError, match="unknown scenario"):
            resolve_scenario("fig99")


class TestWorkloadCaches:
    def test_reset_clears_everything(self):
        SweepRunner().run(fig2_smoke_sweep().with_overrides(
            algorithms=("naive",), grid={}, runs=1), SMOKE)
        assert workload_cache_stats()["topologies"] > 0
        reset_workload_caches()
        assert workload_cache_stats() == {
            "topologies": 0, "queries": 0, "data_sources": 0, "providers": 0,
        }

    def test_inline_query_registrations_are_bounded(self):
        from repro.engine.registry import _INLINE_MAX, QUERIES, resolve_query_name
        from repro.workloads.queries import build_query1

        for _ in range(_INLINE_MAX + 10):
            resolve_query_name(lambda: build_query1())
        inline = [name for name in QUERIES.builders if name.startswith("_inline/")]
        assert len(inline) <= _INLINE_MAX
        reset_workload_caches()
        assert not any(name.startswith("_inline/") for name in QUERIES.builders)

    def test_topology_cache_is_bounded(self):
        reset_workload_caches()
        for seed in range(TOPOLOGY_CACHE_MAX + 5):
            build_topology(SMOKE, preset="moderate", seed=seed, num_nodes=10)
        assert workload_cache_stats()["topologies"] <= TOPOLOGY_CACHE_MAX
        reset_workload_caches()
