"""Tests for multi-phase runs: resolution, round-tripping, equivalence,
parallel == serial on phased sweeps, and store resume."""

import json

import pytest

from repro.core.cost_model import Selectivities
from repro.engine import (
    SCALES,
    PhaseSpec,
    ResultStore,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    build_topology,
    build_workload,
    execute_run,
    run_single,
)
from repro.engine.spec import resolve_phases
from repro.experiments.scenarios import resolve_scenario
from repro.workloads.queries import build_query1

SMOKE = SCALES["smoke"]


def phased_scenario(**overrides):
    base = dict(
        name="phased-test",
        query="query1",
        algorithms=("innet",),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
        phases=(
            {"name": "warmup", "fraction": 0.5},
            {"name": "drift", "data": {"sigma_s": 0.1, "sigma_t": 1.0,
                                       "sigma_st": 0.2}},
        ),
        cycles=10,
        runs=1,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestPhaseResolution:
    def test_fraction_and_remainder(self):
        phases = (PhaseSpec(name="a", fraction=0.5), PhaseSpec(name="b"))
        resolved = resolve_phases(phases, 11)
        assert [p.cycles for p in resolved] == [5, 6]
        assert all(p.fraction is None for p in resolved)

    def test_explicit_cycles_must_sum(self):
        phases = (PhaseSpec(name="a", cycles=4), PhaseSpec(name="b", cycles=4))
        with pytest.raises(ValueError, match="sum to 8"):
            resolve_phases(phases, 10)

    def test_two_open_phases_rejected(self):
        with pytest.raises(ValueError, match="at most one phase"):
            resolve_phases((PhaseSpec(name="a"), PhaseSpec(name="b")), 10)

    def test_over_allocation_rejected(self):
        phases = (PhaseSpec(name="a", cycles=12), PhaseSpec(name="b"))
        with pytest.raises(ValueError, match="over-allocate"):
            resolve_phases(phases, 10)

    def test_cycles_and_fraction_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            PhaseSpec(name="a", cycles=3, fraction=0.5)

    def test_expansion_resolves_fractions(self):
        spec = phased_scenario().expand(SMOKE)[0]
        assert [p.cycles for p in spec.phases] == [5, 5]
        assert spec.phases[0].name == "warmup"


class TestPhaseRoundTrip:
    def test_phase_spec_json_round_trip(self):
        phase = PhaseSpec(
            name="failure", fraction=0.5,
            data={"ratio": "1/2:1/2", "sigma_st": 0.05},
            failures=({"node": "join"}, {"node": 3, "at": 2}),
            moves=({"node": "leaf"},),
        )
        clone = PhaseSpec.from_dict(json.loads(json.dumps(phase.to_dict())))
        assert clone == phase
        assert hash(clone) == hash(phase)

    def test_scenario_with_phases_round_trips(self):
        scenario = phased_scenario()
        clone = ScenarioSpec.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.spec_hash() == scenario.spec_hash()

    def test_run_spec_with_phases_round_trips_and_hashes_stably(self):
        spec = phased_scenario().expand(SMOKE)[0]
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.run_key() == spec.run_key()

    def test_phases_change_the_run_key(self):
        plain = phased_scenario(phases=()).expand(SMOKE)[0]
        phased = phased_scenario().expand(SMOKE)[0]
        assert plain.run_key() != phased.run_key()

    def test_unknown_phase_field_rejected(self):
        with pytest.raises(ValueError, match="unknown phase field"):
            PhaseSpec.from_dict({"name": "a", "cycle": 3})


class TestPhasedExecutionEquivalence:
    def test_single_open_phase_equals_plain_run(self):
        """Chunking the cycle loop at phase boundaries changes nothing."""
        plain = execute_run(phased_scenario(phases=()).expand(SMOKE)[0])
        phased = execute_run(phased_scenario(
            phases=({"name": "a", "fraction": 0.4}, {"name": "b"}),
        ).expand(SMOKE)[0])
        assert phased.report.total_traffic == plain.report.total_traffic
        assert phased.report.base_traffic == plain.report.base_traffic
        assert phased.report.results_produced == plain.report.results_produced
        # ...except for the per-phase accounting the phased run adds
        assert (phased.report.extra["phase_a_traffic"]
                + phased.report.extra["phase_b_traffic"]
                == phased.report.computation_traffic)

    def test_drift_phases_match_switched_data_source(self):
        """A phase data override == the classic switch_cycle workload."""
        spec = phased_scenario().expand(SMOKE)[0]
        phased = execute_run(spec)

        topology = build_topology(SMOKE, preset="moderate", seed=0)
        query = build_query1()
        source = build_workload(
            topology, query, Selectivities(0.5, 0.5, 0.2),
            seed=spec.workload_seed,
            switch_cycle=5, switched_to=Selectivities(0.1, 1.0, 0.2),
        )
        reference = run_single(query, topology, source, "innet",
                               Selectivities(0.5, 0.5, 0.2),
                               cycles=10, seed=spec.seed)
        assert phased.report.total_traffic == reference.report.total_traffic
        assert phased.report.results_produced == reference.report.results_produced

    def test_phase_moves_run_and_report(self):
        scenario = phased_scenario(phases=(
            {"name": "static", "fraction": 0.5},
            {"name": "mobile", "moves": ({"node": "leaf"},)},
        ))
        result = execute_run(scenario.expand(SMOKE)[0])
        assert result.report.extra["phase_mobile_moves"] >= 0.0
        assert result.report.cycles == 10


def _aggregate_table(sweep):
    table = {}
    for group in sweep.groups:
        for label, aggregate in group.aggregates.items():
            key = (tuple(sorted(group.setting.items())), label)
            table[key] = {
                metric: (aggregate.mean(metric), aggregate.confidence_95(metric))
                for metric in ("total_traffic", "base_traffic")
            }
    return table


class TestPhasedSweeps:
    def test_fig14_parallel_equals_serial(self):
        scenario = resolve_scenario("fig14-smoke")
        serial = SweepRunner(jobs=1).run(scenario, SMOKE)
        parallel = SweepRunner(jobs=2, adaptive=False).run(scenario, SMOKE)
        assert serial.executed == parallel.executed > 0
        assert _aggregate_table(serial) == _aggregate_table(parallel)

    def test_appg_parallel_equals_serial(self):
        scenario = resolve_scenario("appg-smoke")
        serial = SweepRunner(jobs=1).run(scenario, SMOKE)
        parallel = SweepRunner(jobs=2, adaptive=False).run(scenario, SMOKE)
        assert serial.executed == parallel.executed > 0
        assert _aggregate_table(serial) == _aggregate_table(parallel)

    def test_phased_scenario_resumes_with_zero_executions(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        scenario = resolve_scenario("fig14-smoke")
        first = SweepRunner(store=store).run(scenario, SMOKE)
        assert first.executed > 0 and first.from_store == 0
        again = SweepRunner(jobs=2, store=store).run(scenario, SMOKE)
        assert (again.executed, again.from_store) == (0, first.executed)
        assert _aggregate_table(first) == _aggregate_table(again)

    def test_fig14_failure_run_has_per_phase_accounting(self):
        sweep = SweepRunner().run(resolve_scenario("fig14-smoke"), SMOKE)
        failed = sweep.groups[0].aggregates["with_failure"].runs[0].report
        assert "phase_pre_failure_traffic" in failed.extra
        assert "phase_after_failure_traffic" in failed.extra


class TestReviewRegressions:
    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            resolve_phases((PhaseSpec(name="steady", cycles=5),
                            PhaseSpec(name="steady")), 10)

    def test_custom_source_with_phase_data_override_rejected(self):
        scenario = ScenarioSpec(
            name="drifting-custom-source",
            algorithms=("innet-cmpg",),
            data={"source": "fig12a-skewed"},
            phases=({"name": "a", "fraction": 0.5},
                    {"name": "b", "data": {"sigma_s": 0.1, "sigma_t": 1.0,
                                           "sigma_st": 0.2}}),
            cycles=4,
            runs=1,
        )
        with pytest.raises(ValueError, match="cannot drift"):
            execute_run(scenario.expand(SMOKE)[0])

    def test_assumed_provider_not_shared_across_workloads(self):
        """A measured provider must track its own grid point's workload."""
        from repro.engine.workload import (
            memoized_assumed_provider,
            reset_workload_caches,
        )

        reset_workload_caches()
        scenario = ScenarioSpec(
            name="provider-key-test",
            query="query3",
            topology_preset="intel",
            algorithms=("base",),
            data={"source": "intel-humidity"},
            assumed={"provider": "fig13-measured"},
            cycles=4,
            runs=1,
        )
        spec_a = scenario.expand(SMOKE)[0]
        spec_b = scenario.with_overrides(
            workload_seed_base=scenario.workload_seed_base + 1
        ).expand(SMOKE)[0]
        providers = [execute_run(spec).report for spec in (spec_a, spec_b)]
        assert providers  # both executed without sharing errors
        # distinct workload seeds must produce distinct cached providers
        from repro.engine.workload import _PROVIDER_CACHE

        assert len(_PROVIDER_CACHE) == 2
        reset_workload_caches()
