"""Tests for histogram summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries import HistogramSummary


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramSummary(lo=1.0, hi=1.0)
        with pytest.raises(ValueError):
            HistogramSummary(lo=0.0, hi=1.0, num_buckets=0)

    def test_counts_accumulate(self):
        hist = HistogramSummary(0, 10, num_buckets=10)
        hist.add_all([0.5, 1.5, 1.7, 9.9])
        assert hist.total == 4
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_out_of_range_clamped(self):
        hist = HistogramSummary(0, 10, num_buckets=5)
        hist.add(-100)
        hist.add(100)
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        assert hist.total == 2

    def test_might_contain(self):
        hist = HistogramSummary(0, 10, num_buckets=10)
        hist.add(3.2)
        assert hist.might_contain(3.9)
        assert not hist.might_contain(7.0)

    def test_merge(self):
        left = HistogramSummary(0, 10, num_buckets=10)
        right = HistogramSummary(0, 10, num_buckets=10)
        left.add_all([1, 2, 3])
        right.add_all([3, 4])
        merged = left.merge(right)
        assert merged.total == 5
        assert merged.counts[3] == 2

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            HistogramSummary(0, 10).merge(HistogramSummary(0, 20))

    def test_merge_type_mismatch(self):
        from repro.summaries import IntervalSummary

        with pytest.raises(TypeError):
            HistogramSummary(0, 10).merge(IntervalSummary())

    def test_copy_independent(self):
        hist = HistogramSummary(0, 10)
        hist.add(5)
        clone = hist.copy()
        clone.add(5)
        assert hist.total == 1
        assert clone.total == 2

    def test_size_bytes(self):
        assert HistogramSummary(0, 10, num_buckets=16).size_bytes() == 36


class TestEstimation:
    def test_selectivity_uniform(self):
        hist = HistogramSummary(0, 100, num_buckets=10)
        hist.add_all(range(100))
        assert hist.selectivity(0, 50) == pytest.approx(0.5, abs=0.05)
        assert hist.selectivity(0, 100) == pytest.approx(1.0, abs=0.01)
        assert hist.selectivity(200, 300) == 0.0

    def test_selectivity_empty(self):
        assert HistogramSummary(0, 10).selectivity(0, 10) == 0.0

    def test_equality_selectivity_with_hint(self):
        hist = HistogramSummary(0, 10)
        hist.add_all([1, 2, 3, 4])
        assert hist.equality_selectivity(distinct_hint=5) == pytest.approx(0.2)

    def test_equality_selectivity_empty(self):
        assert HistogramSummary(0, 10).equality_selectivity() == 0.0

    def test_mean(self):
        hist = HistogramSummary(0, 10, num_buckets=10)
        hist.add_all([5.0] * 10)
        assert hist.mean() == pytest.approx(5.5)
        assert HistogramSummary(0, 10).mean() == 0.0


class TestProperties:
    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=80))
    @settings(max_examples=50)
    def test_total_matches_inserts(self, values):
        hist = HistogramSummary(0, 100, num_buckets=8)
        hist.add_all(values)
        assert hist.total == len(values)

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=80))
    @settings(max_examples=50)
    def test_full_range_selectivity_is_one(self, values):
        hist = HistogramSummary(0, 100, num_buckets=8)
        hist.add_all(values)
        assert hist.selectivity(-1, 101) == pytest.approx(1.0, abs=1e-6)
