"""Tests for R-tree summaries."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries import Rect, RTreeSummary

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
points = st.tuples(coords, coords)


class TestRect:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 1, 1)

    def test_contains_and_intersects(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains((5, 5))
        assert not rect.contains((11, 5))
        assert rect.intersects(Rect(9, 9, 20, 20))
        assert not rect.intersects(Rect(11, 11, 20, 20))

    def test_expand_and_area(self):
        rect = Rect(0, 0, 1, 1).expand(Rect(2, 2, 3, 3))
        assert rect == Rect(0, 0, 3, 3)
        assert rect.area() == 9.0
        assert Rect(0, 0, 1, 1).enlargement(Rect(2, 2, 3, 3)) == 8.0

    def test_min_distance(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.min_distance((5, 5)) == 0.0
        assert rect.min_distance((13, 14)) == pytest.approx(5.0)


class TestRTree:
    def test_empty(self):
        tree = RTreeSummary()
        assert tree.is_empty()
        assert not tree.might_contain((0, 0))
        assert tree.bounding_rect() is None
        assert tree.query_radius((0, 0), 100) == []

    def test_insert_and_membership(self):
        tree = RTreeSummary(max_entries=4)
        pts = [(float(i), float(i % 7)) for i in range(50)]
        tree.add_all(pts)
        assert len(tree) == 50
        for p in pts:
            assert tree.might_contain(p)
        assert not tree.might_contain((999.0, 999.0))

    def test_query_rect(self):
        tree = RTreeSummary(max_entries=4)
        tree.add_all([(x, y) for x in range(10) for y in range(10)])
        found = tree.query_rect(Rect(2, 2, 4, 4))
        assert sorted(found) == sorted(
            [(float(x), float(y)) for x in range(2, 5) for y in range(2, 5)]
        )

    def test_query_radius(self):
        tree = RTreeSummary(max_entries=4)
        tree.add_all([(x, 0.0) for x in range(20)])
        found = tree.query_radius((5.0, 0.0), 2.5)
        assert sorted(found) == [(3.0, 0.0), (4.0, 0.0), (5.0, 0.0), (6.0, 0.0), (7.0, 0.0)]

    def test_intersects_radius_pruning(self):
        tree = RTreeSummary()
        tree.add_all([(100.0, 100.0), (105.0, 102.0)])
        assert tree.intersects_radius((100.0, 100.0), 1.0)
        assert not tree.intersects_radius((0.0, 0.0), 10.0)

    def test_merge(self):
        left = RTreeSummary(points=[(0.0, 0.0), (1.0, 1.0)])
        right = RTreeSummary(points=[(5.0, 5.0)])
        merged = left.merge(right)
        assert len(merged) == 3
        assert merged.might_contain((5.0, 5.0))

    def test_invalid_point(self):
        with pytest.raises(TypeError):
            RTreeSummary().add(7)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTreeSummary(max_entries=1)

    def test_size_bytes_grows(self):
        small = RTreeSummary(max_entries=2, points=[(0.0, 0.0)])
        big = RTreeSummary(max_entries=2, points=[(float(i), float(i)) for i in range(30)])
        assert big.size_bytes() > small.size_bytes()


class TestRTreeProperties:
    @given(st.lists(points, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives(self, pts):
        tree = RTreeSummary(max_entries=4)
        tree.add_all(pts)
        for p in pts:
            assert tree.might_contain((float(p[0]), float(p[1])))

    @given(st.lists(points, min_size=1, max_size=40), points, st.floats(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_radius_query_matches_bruteforce(self, pts, center, radius):
        tree = RTreeSummary(max_entries=4)
        tree.add_all(pts)
        expected = sorted(
            (float(x), float(y))
            for x, y in pts
            if math.dist((float(x), float(y)), center) <= radius
        )
        assert sorted(tree.query_radius(center, radius)) == expected
