"""Tests for interval summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries import IntervalSummary


class TestBasics:
    def test_empty(self):
        interval = IntervalSummary()
        assert interval.is_empty()
        assert not interval.might_contain(0)
        assert interval.width == 0.0

    def test_single_value(self):
        interval = IntervalSummary()
        interval.add(5)
        assert interval.might_contain(5)
        assert not interval.might_contain(4.99)
        assert interval.lo == interval.hi == 5.0

    def test_grows_to_cover(self):
        interval = IntervalSummary()
        interval.add_all([3, -2, 7])
        assert interval.lo == -2.0
        assert interval.hi == 7.0
        assert interval.might_contain(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IntervalSummary(lo=1.0, hi=None)
        with pytest.raises(ValueError):
            IntervalSummary(lo=5.0, hi=1.0)

    def test_overlaps(self):
        interval = IntervalSummary(lo=2.0, hi=4.0)
        assert interval.overlaps(3.0, 10.0)
        assert interval.overlaps(0.0, 2.0)
        assert not interval.overlaps(4.5, 9.0)
        assert not IntervalSummary().overlaps(0.0, 1.0)

    def test_size_bytes_and_copy(self):
        interval = IntervalSummary(lo=0.0, hi=1.0)
        assert interval.size_bytes() == 4
        clone = interval.copy()
        clone.add(10)
        assert interval.hi == 1.0
        assert clone.hi == 10.0


class TestMerge:
    def test_merge_covers_both(self):
        left = IntervalSummary(lo=0.0, hi=2.0)
        right = IntervalSummary(lo=5.0, hi=9.0)
        merged = left.merge(right)
        assert merged.lo == 0.0
        assert merged.hi == 9.0

    def test_merge_with_empty(self):
        left = IntervalSummary(lo=0.0, hi=2.0)
        assert left.merge(IntervalSummary()).lo == 0.0
        assert IntervalSummary().merge(left).hi == 2.0

    def test_merge_type_mismatch(self):
        from repro.summaries import BloomFilterSummary

        with pytest.raises(TypeError):
            IntervalSummary().merge(BloomFilterSummary())


class TestProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_contains_everything_added(self, values):
        interval = IntervalSummary()
        interval.add_all(values)
        assert all(interval.might_contain(v) for v in values)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=25),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=25),
    )
    @settings(max_examples=40)
    def test_merge_equivalent_to_combined_add(self, left_values, right_values):
        left = IntervalSummary()
        left.add_all(left_values)
        right = IntervalSummary()
        right.add_all(right_values)
        merged = left.merge(right)

        combined = IntervalSummary()
        combined.add_all(left_values + right_values)
        assert merged.lo == combined.lo
        assert merged.hi == combined.hi
