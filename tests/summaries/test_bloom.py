"""Unit and property tests for Bloom filter summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries import BloomFilterSummary


class TestBasics:
    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilterSummary(num_bits=64)
        assert not bloom.might_contain(42)
        assert bloom.is_empty()

    def test_added_values_are_found(self):
        bloom = BloomFilterSummary(num_bits=256)
        for value in range(20):
            bloom.add(value)
        for value in range(20):
            assert bloom.might_contain(value)

    def test_contains_operator(self):
        bloom = BloomFilterSummary(num_bits=128, values=[1, 2, 3])
        assert 1 in bloom
        assert bloom.approximate_items == 3

    def test_string_and_int_values_do_not_collide_trivially(self):
        bloom = BloomFilterSummary(num_bits=512)
        bloom.add("sensor-7")
        assert bloom.might_contain("sensor-7")
        assert not bloom.might_contain("sensor-8")

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilterSummary(num_bits=1024, expected_items=50)
        for value in range(50):
            bloom.add(value)
        false_positives = sum(
            1 for probe in range(10_000, 11_000) if bloom.might_contain(probe)
        )
        assert false_positives < 100  # well under 10%

    def test_fill_ratio_monotone(self):
        bloom = BloomFilterSummary(num_bits=64)
        previous = bloom.fill_ratio
        for value in range(10):
            bloom.add(value)
            assert bloom.fill_ratio >= previous
            previous = bloom.fill_ratio

    def test_size_bytes(self):
        assert BloomFilterSummary(num_bits=64).size_bytes() == 8
        assert BloomFilterSummary(num_bits=65).size_bytes() == 9

    def test_copy_is_independent(self):
        bloom = BloomFilterSummary(num_bits=64, values=[1])
        clone = bloom.copy()
        clone.add(2)
        assert clone.might_contain(2)
        # Original may report 2 only as a false positive; check counters instead.
        assert bloom.approximate_items == 1
        assert clone.approximate_items == 2


class TestMerge:
    def test_merge_is_union(self):
        left = BloomFilterSummary(num_bits=256, values=[1, 2, 3])
        right = BloomFilterSummary(num_bits=256, values=[10, 11])
        merged = left.merge(right)
        for value in (1, 2, 3, 10, 11):
            assert merged.might_contain(value)

    def test_merge_geometry_mismatch_rejected(self):
        left = BloomFilterSummary(num_bits=64)
        right = BloomFilterSummary(num_bits=128)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_type_mismatch_rejected(self):
        from repro.summaries import IntervalSummary

        with pytest.raises(TypeError):
            BloomFilterSummary(num_bits=64).merge(IntervalSummary())


class TestValidation:
    @pytest.mark.parametrize("bad_bits", [0, -1])
    def test_invalid_bits_rejected(self, bad_bits):
        with pytest.raises(ValueError):
            BloomFilterSummary(num_bits=bad_bits)

    def test_invalid_hashes_rejected(self):
        with pytest.raises(ValueError):
            BloomFilterSummary(num_bits=64, num_hashes=0)

    def test_invalid_expected_items_rejected(self):
        with pytest.raises(ValueError):
            BloomFilterSummary(num_bits=64, expected_items=0)


class TestProperties:
    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=60))
    @settings(max_examples=60)
    def test_no_false_negatives(self, values):
        bloom = BloomFilterSummary(num_bits=512)
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)

    @given(
        st.lists(st.integers(0, 1000), max_size=30),
        st.lists(st.integers(0, 1000), max_size=30),
    )
    @settings(max_examples=40)
    def test_merge_preserves_membership(self, left_values, right_values):
        left = BloomFilterSummary(num_bits=512, values=left_values)
        right = BloomFilterSummary(num_bits=512, values=right_values)
        merged = left.merge(right)
        for value in left_values + right_values:
            assert merged.might_contain(value)

    @given(st.lists(st.text(max_size=12), max_size=30))
    @settings(max_examples=40)
    def test_strings_no_false_negatives(self, values):
        bloom = BloomFilterSummary(num_bits=512)
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)
