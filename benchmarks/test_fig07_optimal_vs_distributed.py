"""Figure 7: distributed placement vs the global optimum, per topology.

Expected shape (paper): the decentralized computation yields traffic within a
few percent of the optimal centralized placement, independent of topology.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_joins


def test_fig07_optimal_vs_distributed(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_joins.fig07_optimal_vs_distributed, scale=repro_scale
    )
    show(
        "Figure 7 -- expected per-cycle cost: optimal (O) vs distributed (D)",
        rows,
        columns=["topology", "workload", "optimal_cost", "distributed_cost",
                 "overhead_percent"],
    )
    for row in rows:
        assert row["distributed_cost"] >= row["optimal_cost"] - 1e-9
        if row["workload"].startswith("paper"):
            assert row["overhead_percent"] <= 5.0
