"""Figure 8: MPO cost-model validation (Queries 1 and 2).

Expected shape (paper): with group optimization enabled, feeding the
optimizer the correct selectivities gives the best plans; ballpark estimates
remain reasonable while very inaccurate estimates can be expensive.
"""

from benchmarks.conftest import full_sweep_enabled, run_once
from repro.experiments import figures_joins


def test_fig08_mpo_costmodel(benchmark, repro_scale, show):
    ratios = None if full_sweep_enabled() else ["1/10:1", "1/2:1/2", "1:1/10"]
    rows = run_once(
        benchmark, figures_joins.fig08_mpo_costmodel,
        scale=repro_scale, true_ratios=ratios, estimated_ratios=ratios,
    )
    show(
        "Figure 8 -- Innet-cmpg traffic (KB) under different selectivity estimates",
        rows,
        columns=["query", "true_ratio", "estimated_ratio", "is_true_estimate",
                 "total_traffic_kb"],
    )
    # The correct estimate is at worst a whisker away from the best column.
    for query in {row["query"] for row in rows}:
        for true_ratio in {row["true_ratio"] for row in rows}:
            group = [r for r in rows
                     if r["query"] == query and r["true_ratio"] == true_ratio]
            if not group:
                continue
            true_row = next(r for r in group if r["is_true_estimate"])
            best = min(r["total_traffic_kb"] for r in group)
            assert true_row["total_traffic_kb"] <= best * 1.25
