"""Figure 10: learning gains/losses under wrong initial estimates.

Expected shape (paper): under incorrect initial selectivities learning always
yields large gains; with correct estimates the learning overhead is small.
"""

from benchmarks.conftest import full_sweep_enabled, run_once
from repro.experiments import figures_adaptive


def test_fig10_learning_gain(benchmark, repro_scale, show):
    if full_sweep_enabled():
        queries, ratios = None, None
    else:
        queries = ["query1"]
        ratios = ["1/10:1", "1:1/10"]
    rows = run_once(
        benchmark, figures_adaptive.fig10_learning_gain,
        scale=repro_scale, queries=queries,
        true_ratios=ratios, estimated_ratios=ratios,
    )
    show(
        "Figure 10 -- traffic (KB) with and without learning",
        rows,
        columns=["query", "true_ratio", "estimated_ratio", "correct_estimate",
                 "no_learning_kb", "learning_kb", "gain_kb", "reoptimizations"],
    )
    wrong_rows = [r for r in rows if not r["correct_estimate"]]
    correct_rows = [r for r in rows if r["correct_estimate"]]
    # Wrong estimates: learning recovers traffic on average.
    assert sum(r["gain_kb"] for r in wrong_rows) > 0
    # Correct estimates: the learning overhead stays moderate.
    for row in correct_rows:
        assert row["learning_kb"] <= row["no_learning_kb"] * 1.35
