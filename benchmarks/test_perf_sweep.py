"""Benchmark of the sweep engine: serial reference, adaptive jobs=4, pool reuse.

Times the Figure 2 smoke sweep (3 ratios x 2 join selectivities x 6
algorithms) end-to-end through ``SweepRunner``:

* the serial reference executor;
* ``jobs=4`` with the adaptive fallback enabled -- on a single-CPU machine
  (or for runs cheaper than the dispatch overhead) this degrades to serial,
  which is exactly the fix for the old "parallel 2x slower than serial"
  regression: jobs>=1 must never be materially slower than serial;
* a persistent :class:`WorkerPool` run twice back to back (``adaptive=False``
  so the pool is exercised even on one CPU): the first sweep pays worker
  startup, the second reuses the warm workers, demonstrating the
  amortization a campaign gets across scenarios.

Results land in ``BENCH_sweep.json`` at the repo root so future PRs can
track the engine's scaling trajectory alongside ``BENCH_transport.json``.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.engine import SCALES, SweepRunner, WorkerPool, reset_workload_caches
from repro.engine.pool import reset_run_costs, usable_cpus
from repro.experiments.scenarios import BUILTIN_SCENARIOS

from conftest import run_once

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
_RESULTS = {}

_SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Persist the collected timings after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    serial = _RESULTS.get("sweep_fig02_smoke_serial", {}).get("mean_s")
    jobs4 = _RESULTS.get("sweep_fig02_smoke_jobs4", {}).get("mean_s")
    cold = _RESULTS.get("sweep_fig02_smoke_pool_cold", {}).get("mean_s")
    warm = _RESULTS.get("sweep_fig02_smoke_pool_warm", {}).get("mean_s")
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        # pool scaling only shows above 1 core; record the context
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "scenario": "fig02-smoke",
        "benchmarks": _RESULTS,
        "speedup_jobs4_vs_serial": (serial / jobs4) if serial and jobs4 else None,
        "pool_reuse_warm_vs_cold_speedup": (cold / warm) if cold and warm else None,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name, benchmark):
    stats = benchmark.stats.stats
    _RESULTS[name] = {"mean_s": stats.mean, "min_s": stats.min}


def _run_sweep(jobs, **runner_kwargs):
    # Cold caches each time so serial and parallel pay the same setup cost
    # (pool workers fork after the reset and warm their own copies).
    reset_workload_caches()
    scenario = BUILTIN_SCENARIOS["fig02-smoke"]()
    sweep = SweepRunner(jobs=jobs, **runner_kwargs).run(scenario, _SMOKE)
    assert sweep.executed == 36
    return sweep


def test_sweep_fig02_smoke_serial(benchmark, show):
    sweep = run_once(benchmark, _run_sweep, 1)
    _record("sweep_fig02_smoke_serial", benchmark)
    show("fig02-smoke via SweepRunner (serial)", sweep.rows()[:6])


def test_sweep_fig02_smoke_jobs4(benchmark):
    # adaptive (the default): on one CPU, or when the observed per-run cost
    # sits below the dispatch overhead, this degrades to the serial executor
    # -- the contract is "jobs=4 never materially slower than serial"
    sweep = run_once(benchmark, _run_sweep, 4)
    _record("sweep_fig02_smoke_jobs4", benchmark)
    assert len(sweep.groups) == 6


def test_sweep_fig02_smoke_pool_reuse():
    """A warm persistent pool makes the second sweep cheaper than the first."""
    reset_run_costs()
    with WorkerPool(2) as pool:
        started = time.perf_counter()
        _run_sweep(2, pool=pool, adaptive=False)
        cold = time.perf_counter() - started
        assert pool.starts == 1

        started = time.perf_counter()
        _run_sweep(2, pool=pool, adaptive=False)
        warm = time.perf_counter() - started
        # still the same workers: the second sweep paid no startup
        assert pool.starts == 1
        assert pool.dispatched == 72
    _RESULTS["sweep_fig02_smoke_pool_cold"] = {"mean_s": cold, "min_s": cold}
    _RESULTS["sweep_fig02_smoke_pool_warm"] = {"mean_s": warm, "min_s": warm}
    assert warm < cold, (
        f"warm pool sweep ({warm:.3f}s) should beat the cold one ({cold:.3f}s)"
    )
