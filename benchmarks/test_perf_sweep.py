"""Benchmark of the sweep engine: serial reference vs 4-process pool.

Times the Figure 2 smoke sweep (3 ratios x 2 join selectivities x 6
algorithms) end-to-end through ``SweepRunner`` with the serial executor and
with ``jobs=4``, and records both wall-clocks plus the speedup in
``BENCH_sweep.json`` at the repo root so future PRs can track the engine's
scaling trajectory alongside the transport numbers in
``BENCH_transport.json``.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.engine import SCALES, SweepRunner, reset_workload_caches
from repro.experiments.scenarios import BUILTIN_SCENARIOS

from conftest import run_once

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
_RESULTS = {}

_SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Persist the collected timings after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    serial = _RESULTS.get("sweep_fig02_smoke_serial", {}).get("mean_s")
    jobs4 = _RESULTS.get("sweep_fig02_smoke_jobs4", {}).get("mean_s")
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        # pool scaling only shows above 1 core; record the context
        "cpu_count": os.cpu_count(),
        "scenario": "fig02-smoke",
        "benchmarks": _RESULTS,
        "speedup_jobs4_vs_serial": (serial / jobs4) if serial and jobs4 else None,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name, benchmark):
    stats = benchmark.stats.stats
    _RESULTS[name] = {"mean_s": stats.mean, "min_s": stats.min}


def _run_sweep(jobs):
    # Cold caches each time so serial and parallel pay the same setup cost
    # (pool workers fork after the reset and warm their own copies).
    reset_workload_caches()
    scenario = BUILTIN_SCENARIOS["fig02-smoke"]()
    sweep = SweepRunner(jobs=jobs).run(scenario, _SMOKE)
    assert sweep.executed == 36
    return sweep


def test_sweep_fig02_smoke_serial(benchmark, show):
    sweep = run_once(benchmark, _run_sweep, 1)
    _record("sweep_fig02_smoke_serial", benchmark)
    show("fig02-smoke via SweepRunner (serial)", sweep.rows()[:6])


def test_sweep_fig02_smoke_jobs4(benchmark):
    sweep = run_once(benchmark, _run_sweep, 4)
    _record("sweep_fig02_smoke_jobs4", benchmark)
    assert len(sweep.groups) == 6
