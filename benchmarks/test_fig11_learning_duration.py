"""Figure 11: effect of run duration on learning (Query 0, sigma_st = 20 %).

Expected shape (paper): as runs get longer (200 -> 800 cycles), performance
under incorrect initial estimates approaches performance under correct ones,
largely removing the need to know selectivities in advance.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_adaptive


def test_fig11_learning_duration(benchmark, repro_scale, show):
    durations = [repro_scale.long_cycles, 2 * repro_scale.long_cycles]
    rows = run_once(
        benchmark, figures_adaptive.fig11_learning_duration,
        scale=repro_scale, durations=durations,
    )
    show(
        "Figure 11 -- Query 0 learning vs run duration",
        rows,
        columns=["cycles", "true_ratio", "estimated_ratio", "correct_estimate",
                 "no_learning_kb", "learning_kb", "gain_kb"],
    )

    def relative_penalty(cycles):
        """Traffic of wrong-estimate+learning relative to correct-estimate."""
        penalties = []
        for true_ratio in {r["true_ratio"] for r in rows}:
            group = [r for r in rows if r["cycles"] == cycles
                     and r["true_ratio"] == true_ratio]
            correct = next(r for r in group if r["correct_estimate"])
            for row in group:
                if not row["correct_estimate"]:
                    penalties.append(row["learning_kb"] / max(correct["learning_kb"], 1e-9))
        return sum(penalties) / len(penalties)

    # Longer runs shrink the penalty of having started with wrong estimates.
    assert relative_penalty(durations[-1]) <= relative_penalty(durations[0]) * 1.10
