"""Figure 16: path quality in a 100-node mote network (Appendix C).

Expected shape (paper): the multi-tree substrate yields significantly shorter
paths than a single tree and than GPSR-based hashing, approaching the full
connectivity graph as trees are added, while keeping the maximum node load low.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate


def test_fig16_path_quality_mote(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_substrate.fig16_path_quality_mote, scale=repro_scale
    )
    show("Figure 16 -- mote network path quality", rows)
    for topology in {row["topology"] for row in rows}:
        subset = {row["scheme"]: row for row in rows if row["topology"] == topology}
        assert subset["3-tree"]["avg_path_length"] <= subset["1-tree"]["avg_path_length"]
        assert subset["full-graph"]["avg_path_length"] <= subset["3-tree"]["avg_path_length"]
        # Geographic hashing ignores locality: longer paths than 3 trees.
        assert subset["gpsr"]["avg_path_length"] >= subset["3-tree"]["avg_path_length"]
