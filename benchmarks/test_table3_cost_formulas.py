"""Table 3: the analytic cost model validated against simulated traffic.

The analytic formulas (Appendix D) predict expected tuple-hops per sampling
cycle for each algorithm.  Multiplying by the data-tuple size gives predicted
bytes; for the strategies whose behaviour is fully determined by tree depths
(Naive, Base, Yang+07) the simulated computation traffic should land close to
the prediction -- the formulas are what the optimizer trusts, so this bench
validates the foundation of every placement decision.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate


def test_table3_cost_formulas(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_substrate.table3_cost_validation, scale=repro_scale
    )
    show("Table 3 -- analytic vs simulated computation traffic (KB)", rows)
    by_algorithm = {row["algorithm"]: row for row in rows}
    # Naive has no free parameters: the match is tight.
    assert abs(by_algorithm["naive"]["ratio"] - 1.0) <= 0.15
    # Base and Yang+07 depend on pre-filter fractions / fan-out assumptions;
    # the prediction still lands within a factor well under 2.
    for algorithm in ("base", "yang07"):
        assert 0.4 <= by_algorithm[algorithm]["ratio"] <= 1.6
