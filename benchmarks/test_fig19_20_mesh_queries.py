"""Figures 19-20: Queries 1 and 2 on 100-node mesh networks (Appendix F).

Expected shape (paper): counting messages instead of bytes, the
MPO-optimized Innet-cmg outperforms the other schemes with Base next best,
versus DHT and Naive -- i.e. the mote-network conclusions generalize.

Scale note: the figures plot 100-cycle runs; at the 10-cycle ``smoke`` preset
the exploration/placement messages have not amortized, genuinely inverting
the total-message ordering, so the paper's (steady-state) shape is asserted
on computation messages there and on totals at default/paper scale (see
test_fig02_query1_traffic for the full rationale).
"""

from benchmarks.conftest import run_once, shape_metric
from repro.experiments import figures_substrate


def test_fig19_mesh_query1(benchmark, repro_scale, sweep_ratios,
                           sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_substrate.fig19_mesh_query1,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show("Figure 19 -- Query 1 on a mesh network (thousands of messages)", rows)
    metric = shape_metric(repro_scale, "total_messages_k", "computation_messages_k")
    for ratio in sweep_ratios:
        for sigma_st in sweep_join_selectivities:
            subset = {r["algorithm"]: r[metric] for r in rows
                      if r["ratio"] == ratio and r["sigma_st"] == sigma_st}
            assert subset["innet-cmg"] < subset["dht"]
            assert subset["innet-cmg"] < subset["naive"] * 1.10


def test_fig20_mesh_query2(benchmark, repro_scale, sweep_ratios,
                           sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_substrate.fig20_mesh_query2,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show("Figure 20 -- Query 2 on a mesh network (thousands of messages)", rows)
    metric = shape_metric(repro_scale, "total_messages_k", "computation_messages_k")
    for ratio in ("1/10:1", "1:1/10"):
        if ratio not in sweep_ratios:
            continue
        for sigma_st in sweep_join_selectivities:
            subset = {r["algorithm"]: r[metric] for r in rows
                      if r["ratio"] == ratio and r["sigma_st"] == sigma_st}
            assert subset["innet-cmg"] < subset["naive"]
            assert subset["innet-cmg"] < subset["dht"]
