"""Figures 19-20: Queries 1 and 2 on 100-node mesh networks (Appendix F).

Expected shape (paper): counting messages instead of bytes, the
MPO-optimized Innet-cmg outperforms the other schemes with Base next best,
versus DHT and Naive -- i.e. the mote-network conclusions generalize.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate


def test_fig19_mesh_query1(benchmark, repro_scale, sweep_ratios,
                           sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_substrate.fig19_mesh_query1,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show("Figure 19 -- Query 1 on a mesh network (thousands of messages)", rows)
    for ratio in sweep_ratios:
        for sigma_st in sweep_join_selectivities:
            subset = {r["algorithm"]: r["total_messages_k"] for r in rows
                      if r["ratio"] == ratio and r["sigma_st"] == sigma_st}
            assert subset["innet-cmg"] < subset["dht"]
            assert subset["innet-cmg"] < subset["naive"] * 1.10


def test_fig20_mesh_query2(benchmark, repro_scale, sweep_ratios,
                           sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_substrate.fig20_mesh_query2,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show("Figure 20 -- Query 2 on a mesh network (thousands of messages)", rows)
    for ratio in ("1/10:1", "1:1/10"):
        if ratio not in sweep_ratios:
            continue
        for sigma_st in sweep_join_selectivities:
            subset = {r["algorithm"]: r["total_messages_k"] for r in rows
                      if r["ratio"] == ratio and r["sigma_st"] == sigma_st}
            assert subset["innet-cmg"] < subset["naive"]
            assert subset["innet-cmg"] < subset["dht"]
