"""Figure 18: mesh-network scale-up from 50 to 200 nodes (Appendix C).

Expected shape (paper): average path length grows slowly with network size,
additional trees keep helping, and the per-path normalized maximum load stays
flat -- the substrate scales.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate


def test_fig18_mesh_scaleup(benchmark, repro_scale, show):
    rows = run_once(benchmark, figures_substrate.fig18_mesh_scaleup, scale=repro_scale)
    show("Figure 18 -- mesh scale-up: 50/100/200 nodes", rows)
    sizes = sorted({row["num_nodes"] for row in rows})
    assert sizes == [50, 100, 200]
    for num_nodes in sizes:
        subset = {row["scheme"]: row for row in rows if row["num_nodes"] == num_nodes}
        assert subset["3-tree"]["avg_path_length"] <= subset["1-tree"]["avg_path_length"]
        assert subset["3-tree"]["max_load_per_path"] <= 1.0
    # Path lengths grow sub-linearly (roughly with the network diameter).
    small = [r for r in rows if r["num_nodes"] == 50 and r["scheme"] == "3-tree"][0]
    large = [r for r in rows if r["num_nodes"] == 200 and r["scheme"] == "3-tree"][0]
    assert large["avg_path_length"] <= small["avg_path_length"] * 4.0
