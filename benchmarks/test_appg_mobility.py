"""Appendix G: mobile leaf nodes.

Expected shape (paper): moving a leaf node in the medium random topology
requires on the order of a kilobyte of summary-update traffic and around
twenty cycles to propagate, supporting continuous connectivity at roughly
0.5 m/s for a 10 m radio range.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate
from repro.network.mobility import max_supported_speed


def test_appg_mobility(benchmark, repro_scale, show):
    rows = run_once(benchmark, figures_substrate.appg_mobility, scale=repro_scale)
    show("Appendix G -- leaf mobility: update traffic and propagation delay", rows)
    assert rows
    mean_traffic = sum(r["update_traffic_bytes"] for r in rows) / len(rows)
    mean_cycles = sum(r["propagation_cycles"] for r in rows) / len(rows)
    # Same order of magnitude as the paper's 1.2 kB / ~20 cycles.
    assert 200 <= mean_traffic <= 20_000
    assert 2 <= mean_cycles <= 60
    # The derived sustainable movement speed is in the fraction-of-m/s range.
    speed = max_supported_speed(10.0, mean_cycles)
    assert 0.05 <= speed <= 5.0
