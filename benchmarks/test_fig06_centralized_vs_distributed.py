"""Figure 6: centralized vs distributed initiation.

Expected shape (paper): the distributed scheme is up to ~3x cheaper at the
base station and up to ~5x lower latency than centralized optimization.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_joins


def test_fig06_centralized_vs_distributed(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_joins.fig06_centralized_vs_distributed, scale=repro_scale
    )
    show("Figure 6 -- initiation traffic at the base (KB) and latency (cycles)", rows)
    by_scheme = {row["scheme"]: row for row in rows}
    centralized, distributed = by_scheme["centralized"], by_scheme["distributed"]
    assert centralized["traffic_at_base_kb"] > 1.5 * distributed["traffic_at_base_kb"]
    assert centralized["latency_cycles"] > 2.0 * distributed["latency_cycles"]
