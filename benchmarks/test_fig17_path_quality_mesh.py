"""Figure 17: path quality on an 802.11 mesh network with a DHT (Appendix C).

Expected shape (paper): the trends match the mote results; the DHT produces
slightly better path lengths than GPSR (no perimeter walks) but concentrates
more load on its home nodes than the trees do.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_substrate


def test_fig17_path_quality_mesh(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_substrate.fig17_path_quality_mesh, scale=repro_scale
    )
    show("Figure 17 -- mesh network path quality", rows)
    for topology in {row["topology"] for row in rows}:
        subset = {row["scheme"]: row for row in rows if row["topology"] == topology}
        assert subset["3-tree"]["avg_path_length"] <= subset["1-tree"]["avg_path_length"]
        # The DHT rendezvous detour costs path length vs the multi-tree routes.
        assert subset["dht"]["avg_path_length"] >= subset["3-tree"]["avg_path_length"] * 0.9
