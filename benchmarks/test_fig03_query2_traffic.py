"""Figure 3: Query 2 (perimeter join, w=1) -- total traffic and base load.

Expected shape (paper): Innet provides the best performance in all cases of
Query 2; the MPO variants match or improve on it; GHT is poor; Naive and Base
are close to each other because few perimeter producers can be pre-filtered.

Scale note: as with Figure 2, the 10-cycle ``smoke`` preset has not amortized
Innet's initiation traffic, so the paper's ordering (a steady-state claim) is
asserted on computation traffic there and on total traffic at default/paper
scale (see test_fig02_query1_traffic for the full rationale).
"""

from benchmarks.conftest import run_once, shape_metric
from repro.experiments import figures_joins


def test_fig03_query2_traffic(benchmark, repro_scale, sweep_ratios,
                              sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_joins.fig03_query2_traffic,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show(
        "Figure 3 -- Query 2, total traffic (KB) and base-station load (KB)",
        rows,
        columns=["ratio", "sigma_st", "algorithm", "total_traffic_kb",
                 "base_traffic_kb", "total_ci95_kb"],
    )
    assert rows
    metric = shape_metric(repro_scale, "total_traffic_kb", "computation_traffic_kb")
    # At the asymmetric ratios the in-network strategies clearly beat Naive.
    for ratio in ("1/10:1", "1:1/10"):
        if ratio not in sweep_ratios:
            continue
        for sigma_st in sweep_join_selectivities:
            subset = {
                r["algorithm"]: r[metric] for r in rows
                if r["ratio"] == ratio and r["sigma_st"] == sigma_st
            }
            assert subset["innet-cmg"] < subset["naive"]
