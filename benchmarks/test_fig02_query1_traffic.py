"""Figure 2: Query 1 (w=3) -- total traffic and base-station load.

Expected shape (paper): Naive incurs the highest traffic and maximum load;
Base is significantly better; GHT always does poorly due to long routing
paths; plain Innet wins when sigma_s is low but loses to Base when sigma_s is
high; Innet-cmg / Innet-cmpg match or beat everything.

Scale note: Figure 2 plots a 100-cycle run, where per-cycle (computation)
traffic dominates the one-off initiation cost.  The 10-cycle ``smoke`` preset
genuinely inverts the *total*-traffic ordering -- Innet's exploration and
join-node placement (~10 KB) has not amortized yet -- so at smoke scale the
paper's ordering is asserted on computation traffic, the quantity the
figure's claim is actually about; at default/paper scale the strict
total-traffic ordering holds and is asserted directly.
"""

from benchmarks.conftest import run_once, shape_metric
from repro.experiments import figures_joins


def test_fig02_query1_traffic(benchmark, repro_scale, sweep_ratios,
                              sweep_join_selectivities, show):
    rows = run_once(
        benchmark, figures_joins.fig02_query1_traffic,
        scale=repro_scale, ratios=sweep_ratios,
        join_selectivities=sweep_join_selectivities,
    )
    show(
        "Figure 2 -- Query 1, total traffic (KB) and base-station load (KB)",
        rows,
        columns=["ratio", "sigma_st", "algorithm", "total_traffic_kb",
                 "base_traffic_kb", "total_ci95_kb"],
    )
    assert rows
    metric = shape_metric(repro_scale, "total_traffic_kb", "computation_traffic_kb")
    # The MPO variants never lose badly to Naive anywhere in the sweep.
    for ratio in sweep_ratios:
        for sigma_st in sweep_join_selectivities:
            subset = {
                r["algorithm"]: r[metric] for r in rows
                if r["ratio"] == ratio and r["sigma_st"] == sigma_st
            }
            assert subset["innet-cmpg"] < subset["naive"]
            assert subset["ght"] > subset["innet-cmpg"]
