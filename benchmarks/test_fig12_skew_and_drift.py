"""Figure 12: spatial skew (a) and temporal drift (b).

Expected shape (paper): (a) with half the nodes on Sel1 and half on Sel2,
the learning runs approach the full-knowledge oracle (up to ~70 % traffic
reduction vs a single wrong regime); (b) when the workload switches regimes
mid-run, learning recovers roughly half the oracle's advantage.
"""

from benchmarks.conftest import full_sweep_enabled, run_once
from repro.experiments import figures_adaptive


def _queries():
    return None if full_sweep_enabled() else ["query1"]


def test_fig12a_spatial_skew(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_adaptive.fig12a_spatial_skew,
        scale=repro_scale, queries=_queries(),
    )
    show("Figure 12a -- spatial skew: traffic (KB) per optimization setting", rows)
    for query in {row["query"] for row in rows}:
        subset = {r["setting"]: r["total_traffic_kb"] for r in rows if r["query"] == query}
        best_learning = min(subset["Sel1 learn"], subset["Sel2 learn"])
        worst_static = max(subset["Sel1"], subset["Sel2"])
        # Learning never ends up worse than the worst static mis-configuration.
        assert best_learning <= worst_static * 1.05


def test_fig12b_temporal_drift(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_adaptive.fig12b_temporal_drift,
        scale=repro_scale, queries=_queries(),
    )
    show("Figure 12b -- temporal drift: traffic (KB) per optimization setting", rows)
    for query in {row["query"] for row in rows}:
        subset = {r["setting"]: r["total_traffic_kb"] for r in rows if r["query"] == query}
        assert subset["Full knowledge"] > 0
        best_learning = min(subset["Sel1 learn"], subset["Sel2 learn"])
        worst_static = max(subset["Sel1"], subset["Sel2"])
        assert best_learning <= worst_static * 1.10
