"""Ablation: how many routing trees should the substrate maintain?

DESIGN.md calls out the number of overlapping routing trees as a key design
choice of the Innet substrate (the paper uses 3; Appendix C's Figures 16-18
motivate it via path quality).  This ablation measures the end-to-end effect
on join traffic: more trees buy shorter producer-to-join-node paths at the
cost of more exploration during initiation.  The sweep runs through the
scenario engine (the ``ablation-trees`` built-in scenario).
"""

from benchmarks.conftest import run_once
from repro.engine import SweepRunner
from repro.experiments.scenarios import resolve_scenario


def _ablation(scale):
    sweep = SweepRunner().run(resolve_scenario("ablation-trees"), scale)
    rows = []
    for label, aggregate in sweep.only().items():
        report = aggregate.runs[0].report
        rows.append({
            "num_trees": int(label.split("-")[0]),
            "total_traffic_kb": report.total_traffic / 1000.0,
            "initiation_kb": report.initiation_traffic / 1000.0,
            "computation_kb": report.computation_traffic / 1000.0,
            "results": report.results_produced,
        })
    return rows


def test_ablation_number_of_trees(benchmark, repro_scale, show):
    rows = run_once(benchmark, _ablation, repro_scale)
    show("Ablation -- routing trees in the Innet substrate (Query 2)", rows)
    by_trees = {row["num_trees"]: row for row in rows}
    # Identical join results regardless of the substrate's tree count.
    assert len({row["results"] for row in rows}) == 1
    # More trees never hurt the per-cycle computation traffic...
    assert by_trees[3]["computation_kb"] <= by_trees[1]["computation_kb"] * 1.05
    # ...but exploration over more trees costs more initiation traffic.
    assert by_trees[3]["initiation_kb"] >= by_trees[1]["initiation_kb"] * 0.95
