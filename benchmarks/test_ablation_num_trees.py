"""Ablation: how many routing trees should the substrate maintain?

DESIGN.md calls out the number of overlapping routing trees as a key design
choice of the Innet substrate (the paper uses 3; Appendix C's Figures 16-18
motivate it via path quality).  This ablation measures the end-to-end effect
on join traffic: more trees buy shorter producer-to-join-node paths at the
cost of more exploration during initiation.
"""

from benchmarks.conftest import run_once
from repro.core import Selectivities
from repro.experiments.harness import build_topology, build_workload, run_single
from repro.workloads.queries import build_query2


def _ablation(scale):
    topology = build_topology(scale, preset="moderate", seed=0)
    query = build_query2()
    selectivities = Selectivities(0.5, 0.5, 0.05)
    data_source = build_workload(topology, query, selectivities, seed=42)
    rows = []
    for num_trees in (1, 2, 3):
        result = run_single(
            query, topology, data_source, "innet-cmg", selectivities,
            cycles=scale.cycles, seed=0,
            strategy_kwargs={"num_trees": num_trees},
        )
        rows.append({
            "num_trees": num_trees,
            "total_traffic_kb": result.report.total_traffic / 1000.0,
            "initiation_kb": result.report.initiation_traffic / 1000.0,
            "computation_kb": result.report.computation_traffic / 1000.0,
            "results": result.report.results_produced,
        })
    return rows


def test_ablation_number_of_trees(benchmark, repro_scale, show):
    rows = run_once(benchmark, _ablation, repro_scale)
    show("Ablation -- routing trees in the Innet substrate (Query 2)", rows)
    by_trees = {row["num_trees"]: row for row in rows}
    # Identical join results regardless of the substrate's tree count.
    assert len({row["results"] for row in rows}) == 1
    # More trees never hurt the per-cycle computation traffic...
    assert by_trees[3]["computation_kb"] <= by_trees[1]["computation_kb"] * 1.05
    # ...but exploration over more trees costs more initiation traffic.
    assert by_trees[3]["initiation_kb"] >= by_trees[1]["initiation_kb"] * 0.95
