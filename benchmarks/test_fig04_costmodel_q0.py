"""Figure 4: pairwise cost-model validation on Query 0 (1:1 join).

Expected shape (paper): when Innet is given the *true* sigma_s:sigma_t ratio
it produces the lowest traffic within each group; very wrong estimates cost
more.
"""

from benchmarks.conftest import full_sweep_enabled, run_once
from repro.experiments import figures_joins


def test_fig04_costmodel_query0(benchmark, repro_scale, show):
    ratios = None if full_sweep_enabled() else ["1/10:1", "1/2:1/2", "1:1/10"]
    rows = run_once(
        benchmark, figures_joins.fig04_costmodel_query0,
        scale=repro_scale, true_ratios=ratios, estimated_ratios=ratios,
    )
    show(
        "Figure 4 -- Query 0 traffic (KB) when optimizing for each estimate",
        rows,
        columns=["true_ratio", "estimated_ratio", "is_true_estimate",
                 "total_traffic_kb", "best_estimate"],
    )
    # The true estimate is never beaten by more than a whisker.
    for true_ratio in {row["true_ratio"] for row in rows}:
        group = [r for r in rows if r["true_ratio"] == true_ratio]
        true_row = next(r for r in group if r["is_true_estimate"])
        best = min(r["total_traffic_kb"] for r in group)
        assert true_row["total_traffic_kb"] <= best * 1.10
