"""Figure 13: Query 3 on the Intel-lab(-like) dataset with learning.

Expected shape (paper): starting from 100 % selectivity estimates puts every
join node at the base station (identical to Naive/Base); as estimates are
learned the join nodes migrate in-network and total traffic lands within
~10 % of the full-knowledge Innet run, while GHT/GPSR and Yang+07 are far
more expensive (the paper plots this on a log scale).
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_adaptive


def test_fig13_intel_learning(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_adaptive.fig13_intel_learning, scale=repro_scale
    )
    show(
        "Figure 13 -- Intel dataset (Query 3): traffic at base, max node, total (KB)",
        rows,
        columns=["setting", "total_traffic_kb", "base_traffic_kb",
                 "max_node_traffic_kb", "results", "reoptimizations"],
    )
    by_setting = {row["setting"]: row for row in rows}
    ght = by_setting["ght_gpsr"]["total_traffic_kb"]
    full = by_setting["innet_full_knowledge"]["total_traffic_kb"]
    learn = by_setting["innet_learn"]["total_traffic_kb"]
    naive = by_setting["naive_base"]["total_traffic_kb"]
    # GHT/GPSR is by far the most expensive; the in-network runs are cheapest.
    assert ght > naive
    assert full <= naive * 1.05
    # Learning lands between the at-base start and the full-knowledge run.
    assert learn <= naive * 1.15
    assert learn >= full * 0.85
