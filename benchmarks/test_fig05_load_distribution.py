"""Figure 5: load distribution of the 15 most loaded nodes, Query 1.

Expected shape (paper): all strategies exhibit similar, steeply decreasing
load profiles; the grouped-at-base strategies concentrate the highest load at
the node(s) next to the base station.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_joins


def test_fig05_load_distribution(benchmark, repro_scale, show):
    rows = run_once(benchmark, figures_joins.fig05_load_distribution, scale=repro_scale)
    show(
        "Figure 5 -- per-node load (KB) of the 15 most loaded nodes",
        rows,
        columns=["algorithm", "rank", "node", "load_kb"],
    )
    algorithms = {row["algorithm"] for row in rows}
    assert {"naive", "base", "innet", "innet-cmg", "innet-cmpg"} <= algorithms
    for algorithm in algorithms:
        loads = [r["load_kb"] for r in rows if r["algorithm"] == algorithm]
        assert loads == sorted(loads, reverse=True)
        assert loads[0] > 0
