"""Ablation: the adaptive re-optimization trigger threshold.

Section 6 fixes the divergence threshold at 33 % as "a good compromise between
maintaining near-optimal execution and low adaptivity overhead".  This
ablation sweeps the threshold under wrong initial estimates: a hair-trigger
threshold re-optimizes constantly (overhead), a very lax one barely adapts
(stays close to the unlearned plan).
"""

from benchmarks.conftest import run_once
from repro.core import Selectivities
from repro.core.adaptive import AdaptivePolicy
from repro.experiments.harness import build_topology, build_workload, run_single
from repro.workloads.queries import build_query1

ACTUAL = Selectivities(0.1, 1.0, 0.05)
ASSUMED = Selectivities(1.0, 0.1, 0.05)


def _ablation(scale):
    topology = build_topology(scale, preset="moderate", seed=0)
    query = build_query1()
    data_source = build_workload(topology, query, ACTUAL, seed=17)
    cycles = scale.long_cycles
    rows = []
    baseline = run_single(query, topology, data_source, "innet-cmpg", ASSUMED,
                          cycles=cycles, seed=0)
    rows.append({
        "threshold": "no learning",
        "total_traffic_kb": baseline.report.total_traffic / 1000.0,
        "reoptimizations": 0,
    })
    for threshold in (0.10, 0.33, 1.00):
        policy = AdaptivePolicy(divergence_threshold=threshold,
                                check_interval=10, min_cycles=10)
        result = run_single(
            query, topology, data_source, "innet-learn", ASSUMED,
            cycles=cycles, seed=0, strategy_kwargs={"adaptive_policy": policy},
        )
        rows.append({
            "threshold": f"{threshold:.2f}",
            "total_traffic_kb": result.report.total_traffic / 1000.0,
            "reoptimizations": result.report.reoptimizations,
        })
    return rows


def test_ablation_adaptive_threshold(benchmark, repro_scale, show):
    rows = run_once(benchmark, _ablation, repro_scale)
    show("Ablation -- adaptive divergence threshold (Query 1, wrong estimates)", rows)
    by_threshold = {row["threshold"]: row for row in rows}
    paper_choice = by_threshold["0.33"]
    no_learning = by_threshold["no learning"]
    # The paper's 33 % threshold beats not learning at all under wrong estimates.
    assert paper_choice["total_traffic_kb"] < no_learning["total_traffic_kb"]
    # A hair-trigger threshold re-optimizes at least as often as the 33 % one.
    assert by_threshold["0.10"]["reoptimizations"] >= paper_choice["reoptimizations"]
