"""Ablation: the adaptive re-optimization trigger threshold.

Section 6 fixes the divergence threshold at 33 % as "a good compromise between
maintaining near-optimal execution and low adaptivity overhead".  This
ablation sweeps the threshold under wrong initial estimates: a hair-trigger
threshold re-optimizes constantly (overhead), a very lax one barely adapts
(stays close to the unlearned plan).  The sweep runs through the scenario
engine (the ``ablation-threshold`` built-in scenario).
"""

from benchmarks.conftest import run_once
from repro.engine import SweepRunner
from repro.experiments.scenarios import resolve_scenario


def _ablation(scale):
    sweep = SweepRunner().run(resolve_scenario("ablation-threshold"), scale)
    rows = []
    for label, aggregate in sweep.only().items():
        reoptimizations = (0 if label == "no learning"
                           else int(aggregate.mean("reoptimizations")))
        rows.append({
            "threshold": label,
            "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
            "reoptimizations": reoptimizations,
        })
    return rows


def test_ablation_adaptive_threshold(benchmark, repro_scale, show):
    rows = run_once(benchmark, _ablation, repro_scale)
    show("Ablation -- adaptive divergence threshold (Query 1, wrong estimates)", rows)
    by_threshold = {row["threshold"]: row for row in rows}
    paper_choice = by_threshold["0.33"]
    no_learning = by_threshold["no learning"]
    # The paper's 33 % threshold beats not learning at all under wrong estimates.
    assert paper_choice["total_traffic_kb"] < no_learning["total_traffic_kb"]
    # A hair-trigger threshold re-optimizes at least as often as the 33 % one.
    assert by_threshold["0.10"]["reoptimizations"] >= paper_choice["reoptimizations"]
