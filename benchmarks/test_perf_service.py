"""Service-mode performance trajectory.

Times the three service-layer hot paths — query admission onto a warm
shared substrate, incremental group reoptimization under churn, and the
steady-state multi-query cycle rate at 32 concurrent queries — and records
them in ``BENCH_service.json`` at the repo root so future PRs can compare.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.service.churn import churn_query
from repro.service.engine import ServiceConfig, ServiceEngine

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
_RESULTS = {}

NUM_NODES = 120
CONCURRENCY = 32


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Persist the collected numbers after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "num_nodes": NUM_NODES,
        "concurrency": CONCURRENCY,
        "benchmarks": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name, benchmark, **extra):
    stats = benchmark.stats.stats
    _RESULTS[name] = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "ops_per_s": 1.0 / stats.mean if stats.mean else None,
        **extra,
    }


def _engine(algorithm="innet-cmg"):
    return ServiceEngine(
        ServiceConfig(num_nodes=NUM_NODES, default_algorithm=algorithm)
    )


def _fill(engine, count, seed=7):
    ids = []
    for slot in range(count):
        name, sql = churn_query(slot, seed, NUM_NODES)
        ids.append(engine.submit(sql=sql, name=name)["query_id"])
    return ids


def test_perf_admission_throughput(benchmark):
    """Parse + initiate + incremental-GROUPOPT cost of one admission.

    Each round admits a fresh query onto a substrate already serving a
    32-query population (the worst case: every attach intersects the big
    cross-query groups).
    """
    engine = _engine()
    _fill(engine, CONCURRENCY)
    engine.step(2)
    slot = [CONCURRENCY]

    def admit():
        name, sql = churn_query(slot[0], 7, NUM_NODES)
        slot[0] += 1
        return engine.submit(sql=sql, name=name)["query_id"]

    assert benchmark(admit) > 0
    _record("admission_at_32_queries", benchmark)


def test_perf_churn_reoptimization(benchmark):
    """One cancel + one admit (the churn step), including group re-decisions."""
    engine = _engine()
    ids = _fill(engine, CONCURRENCY)
    engine.step(2)
    state = {"slot": CONCURRENCY, "ids": ids}

    def churn():
        state["ids"].append(state["ids"].pop(0))
        victim = state["ids"].pop(0)
        engine.cancel(victim)
        name, sql = churn_query(state["slot"], 7, NUM_NODES)
        state["slot"] += 1
        state["ids"].append(engine.submit(sql=sql, name=name)["query_id"])
        return engine.shared.reoptimizations

    benchmark(churn)
    summary = engine.reopt_summary()
    _record(
        "churn_step_at_32_queries",
        benchmark,
        reoptimizations=engine.shared.reoptimizations,
        reopt_latency_p50_hops=summary["reopt_latency_p50"],
        reopt_latency_p95_hops=summary["reopt_latency_p95"],
    )
    assert engine.shared.reoptimizations > 0


def test_perf_steady_state_cycle_rate(benchmark):
    """Sampling cycles per second with 32 concurrent shared queries."""
    engine = _engine()
    _fill(engine, CONCURRENCY)
    engine.step(2)  # warm caches and learning state

    def cycle():
        engine.step(1)
        return engine.cycle

    assert benchmark(cycle) > 0
    stats = engine.stats()
    _record(
        "cycle_at_32_queries",
        benchmark,
        cycles_per_s=(
            1.0 / benchmark.stats.stats.mean
            if benchmark.stats.stats.mean else None
        ),
        shared_savings_units=stats["shared_savings_units"],
    )
    assert stats["shared_savings_units"] > 0
