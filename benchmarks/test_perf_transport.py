"""Micro-benchmarks for the routing/transport performance layer.

Times the two Python-level hot paths every figure benchmark leans on — the
instant-accounting ``NetworkSimulator.transfer`` and the PathCache-backed
``Topology.shortest_path``/``shortest_hops`` — plus the lossy batched
variant, and records the results in ``BENCH_transport.json`` at the repo
root so future PRs have a perf trajectory to compare against.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.network.links import lossy_links
from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_topology, random_topology

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_transport.json"
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Persist the collected timings after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name, benchmark):
    stats = benchmark.stats.stats
    _RESULTS[name] = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "ops_per_s": 1.0 / stats.mean if stats.mean else None,
    }


@pytest.fixture(scope="module")
def mesh():
    return grid_topology(num_nodes=100)


@pytest.fixture(scope="module")
def mote():
    return random_topology(num_nodes=100, average_degree=8.0, seed=2)


def test_perf_transfer_heavy(benchmark, mesh):
    """Charge 1k multi-hop paths per round through the fast path."""
    simulator = NetworkSimulator(mesh)
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def run():
        for _ in range(10):
            for path in paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_perfect", benchmark)


def test_perf_transfer_lossy(benchmark, mesh):
    """The batched truncated-geometric sampling path."""
    simulator = NetworkSimulator(mesh, link_model=lossy_links(0.2, seed=9))
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def run():
        for _ in range(10):
            for path in paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_lossy", benchmark)


def test_perf_shortest_path_heavy(benchmark, mote):
    """All-pairs-ish path queries served by the PathCache."""
    nodes = mote.node_ids

    def run():
        total = 0
        for source in nodes[::2]:
            for target in nodes[::3]:
                path = mote.shortest_path(source, target)
                if path is not None:
                    total += len(path)
        return total

    assert benchmark(run) > 0
    _record("shortest_path_heavy", benchmark)


def test_perf_shortest_hops_invalidation(benchmark, mote):
    """Worst case: every round invalidates and rebuilds the BFS tables."""
    nodes = mote.node_ids

    def run():
        mote.invalidate_routing_caches()
        total = 0
        for source in nodes[::10]:
            total += len(mote.shortest_hops(source))
        return total

    assert benchmark(run) > 0
    _record("shortest_hops_cold", benchmark)
