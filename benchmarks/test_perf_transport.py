"""Micro-benchmarks for the routing/transport performance layer.

Times the two Python-level hot paths every figure benchmark leans on — the
instant-accounting ``NetworkSimulator.transfer`` and the PathCache-backed
``Topology.shortest_path``/``shortest_hops`` — plus the lossy batched
variant, and records the results in ``BENCH_transport.json`` at the repo
root so future PRs have a perf trajectory to compare against.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.joins.multicast import build_multicast_tree
from repro.metrics import EnergySink, HotspotSink, MetricsPipeline
from repro.network.batch import CycleBatcher
from repro.network.links import lossy_links
from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_topology, random_topology
from repro.network.traffic import TrafficStats

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_transport.json"
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Persist the collected timings after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name, benchmark):
    stats = benchmark.stats.stats
    _RESULTS[name] = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "ops_per_s": 1.0 / stats.mean if stats.mean else None,
    }


@pytest.fixture(scope="module")
def mesh():
    return grid_topology(num_nodes=100)


@pytest.fixture(scope="module")
def mote():
    return random_topology(num_nodes=100, average_degree=8.0, seed=2)


def test_perf_transfer_heavy(benchmark, mesh):
    """Charge 1k multi-hop paths per round through the fast path."""
    simulator = NetworkSimulator(mesh)
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def run():
        for _ in range(10):
            for path in paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_perfect", benchmark)


def test_perf_transfer_lossy(benchmark, mesh):
    """The batched truncated-geometric sampling path."""
    simulator = NetworkSimulator(mesh, link_model=lossy_links(0.2, seed=9))
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def run():
        for _ in range(10):
            for path in paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_lossy", benchmark)


def test_perf_transfer_batch_perfect(benchmark, mesh):
    """The batch-cycle kernel on perfect links: one event per round."""
    simulator = NetworkSimulator(mesh)
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]
    prepared = simulator.prepare_paths(paths)

    def run():
        for _ in range(10):
            simulator.transfer_many(prepared, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_batch_perfect", benchmark)


def test_perf_transfer_batch_lossy(benchmark, mesh):
    """The batch-cycle kernel on lossy links: one draw + one event."""
    simulator = NetworkSimulator(mesh, link_model=lossy_links(0.2, seed=9))
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]
    prepared = simulator.prepare_paths(paths)

    def run():
        for _ in range(10):
            simulator.transfer_many(prepared, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_batch_lossy", benchmark)


def test_perf_batch_speedup_guard():
    """The batch kernel must stay >= 5x the per-tuple reference path.

    Runs after the four transfer benchmarks recorded their throughput; the
    issue's acceptance bar is 10x on perfect links -- the guard is set at
    half that so routine timer noise cannot break CI while a real regression
    (e.g. re-introducing a per-path Python loop into the kernel) still does.
    """
    needed = ("transfer_heavy_perfect", "transfer_heavy_batch_perfect",
              "transfer_heavy_lossy", "transfer_heavy_batch_lossy")
    if not all(name in _RESULTS for name in needed):
        pytest.skip("transfer benchmarks did not run (benchmark-only module)")
    for reference, batched in (needed[:2], needed[2:]):
        speedup = _RESULTS[reference]["mean_s"] / _RESULTS[batched]["mean_s"]
        _RESULTS[batched]["speedup_vs_per_tuple"] = speedup
        assert speedup >= 5.0, (
            f"{batched} is only {speedup:.1f}x over {reference}; "
            "the batch kernel regressed"
        )


@pytest.fixture(scope="module")
def innet_rung():
    """Innet-shaped cycle traffic at the ladder's 10k rung.

    A roster of producers, each with a multicast tree spanning two join
    nodes plus a SEND_TO_JOIN fan-in path -- the exact traffic shape
    ``InnetJoin.execute_cycle_batch`` ships through ``ship_edges`` /
    ``ship_many``, isolated from the probe/window work so the benchmark
    times the transport layer alone.
    """
    from repro.engine.workload import build_topology

    topology = build_topology(None, preset="scale", seed=0, num_nodes=10_000)
    rng = np.random.default_rng(3)
    nodes = [node for node in topology.node_ids if node != topology.base_id]
    trees = []
    join_paths = []
    for producer in rng.choice(nodes, size=200, replace=False):
        joins = rng.choice(nodes, size=2, replace=False)
        paths = [topology.shortest_path(int(producer), int(join))
                 for join in joins if int(join) != int(producer)]
        paths = [path for path in paths if path and len(path) > 1]
        if not paths:
            continue
        trees.append(build_multicast_tree(int(producer), paths))
        join_paths.append(paths[0])
    senders = np.concatenate([tree.edge_arrays()[0] for tree in trees])
    receivers = np.concatenate([tree.edge_arrays()[1] for tree in trees])
    return topology, trees, join_paths, senders, receivers


def test_perf_transfer_innet_reference(benchmark, innet_rung):
    """The per-tuple reference: one transfer per tree edge and join path."""
    topology, trees, join_paths, _, _ = innet_rung
    simulator = NetworkSimulator(topology)

    def run():
        for _ in range(5):
            for tree in trees:
                for parent, child in tree.edges():
                    simulator.transfer((parent, child), 24, MessageKind.DATA)
            for path in join_paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_innet_reference", benchmark)


def test_perf_transfer_batch_innet(benchmark, innet_rung):
    """The batched innet cycle: one ship_edges + one ship_many + flush."""
    topology, _, join_paths, senders, receivers = innet_rung
    simulator = NetworkSimulator(topology)
    batcher = CycleBatcher(simulator)

    def run():
        for _ in range(5):
            batcher.ship_edges(senders, receivers, 24, MessageKind.DATA)
            batcher.ship_many(join_paths, 24, MessageKind.DATA)
            batcher.flush()
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_batch_innet", benchmark)


def test_perf_batch_innet_speedup_guard():
    """The batched innet cycle must stay >= 3x the per-tuple reference."""
    needed = ("transfer_heavy_innet_reference", "transfer_heavy_batch_innet")
    if not all(name in _RESULTS for name in needed):
        pytest.skip("innet transfer benchmarks did not run")
    reference, batched = needed
    speedup = _RESULTS[reference]["mean_s"] / _RESULTS[batched]["mean_s"]
    _RESULTS[batched]["speedup_vs_per_tuple"] = speedup
    assert speedup >= 3.0, (
        f"{batched} is only {speedup:.1f}x over {reference}; "
        "the tree-shaped batch path regressed"
    )


def _best_of(function, repeats=9):
    """Minimum wall-clock of *repeats* invocations (the stable statistic)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def test_perf_pipeline_overhead_guard(mesh):
    """Pipeline with only the traffic sink adds <5% vs seed accounting.

    The seed accounting path charged ``TrafficStats.charge_path`` directly;
    the pipeline's single-listener dispatch binds the same bound method, so
    the instrumented hot path must stay within 5 % of it (it is the same
    call -- measured overhead is ~0%; the margin absorbs timer noise).
    Recorded in ``BENCH_transport.json`` alongside the transfer benchmarks.
    """
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def charge_all(charge_path):
        for _ in range(40):
            for path in paths:
                charge_path(path, 24, MessageKind.DATA)

    direct = TrafficStats()
    pipeline = MetricsPipeline([TrafficStats()])
    # warm-up so both paths are compiled/cached before timing
    charge_all(direct.charge_path)
    charge_all(pipeline.charge_path)
    seed_s = _best_of(lambda: charge_all(direct.charge_path))
    piped_s = _best_of(lambda: charge_all(pipeline.charge_path))
    overhead = piped_s / seed_s - 1.0
    _RESULTS["pipeline_overhead_traffic_only"] = {
        "seed_best_s": seed_s,
        "pipeline_best_s": piped_s,
        "overhead_fraction": overhead,
    }
    assert overhead < 0.05, (
        f"metrics pipeline costs {overhead:.1%} over seed accounting "
        f"({piped_s:.4f}s vs {seed_s:.4f}s)"
    )


def test_perf_transfer_instrumented(benchmark, mesh):
    """Transfer throughput with the full sink set (perf trajectory only)."""
    simulator = NetworkSimulator(mesh, sinks=[EnergySink(), HotspotSink()])
    base = mesh.base_id
    paths = [mesh.shortest_path(node, base) for node in mesh.node_ids if node != base]

    def run():
        for _ in range(10):
            for path in paths:
                simulator.transfer(path, 24, MessageKind.DATA)
        return simulator.stats.messages_sent

    assert benchmark(run) > 0
    _record("transfer_heavy_instrumented", benchmark)


def test_perf_shortest_path_heavy(benchmark, mote):
    """All-pairs-ish path queries served by the PathCache."""
    nodes = mote.node_ids

    def run():
        total = 0
        for source in nodes[::2]:
            for target in nodes[::3]:
                path = mote.shortest_path(source, target)
                if path is not None:
                    total += len(path)
        return total

    assert benchmark(run) > 0
    _record("shortest_path_heavy", benchmark)


def test_perf_shortest_hops_invalidation(benchmark, mote):
    """Worst case: every round invalidates and rebuilds the BFS tables."""
    nodes = mote.node_ids

    def run():
        mote.invalidate_routing_caches()
        total = 0
        for source in nodes[::10]:
            total += len(mote.shortest_hops(source))
        return total

    assert benchmark(run) > 0
    _record("shortest_hops_cold", benchmark)
