"""Figure 14: effect of join-node failure on delay and traffic.

Expected shape (paper): failing the join node halfway through the run adds a
few cycles of result delay, and the traffic afterwards behaves like joining
at the base station; no results are lost.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_adaptive


def test_fig14_failure(benchmark, repro_scale, show):
    rows = run_once(benchmark, figures_adaptive.fig14_failure, scale=repro_scale)
    show("Figure 14 -- join-node failure: result delay (cycles) and traffic (KB)", rows)
    for sigma_st in {row["sigma_st"] for row in rows}:
        subset = {r["setting"]: r for r in rows if r["sigma_st"] == sigma_st}
        no_failure = subset["no_failure"]
        with_failure = subset["with_failure"]
        assert with_failure["delay_cycles"] >= no_failure["delay_cycles"]
        # The computation keeps going: most results are still produced.
        assert with_failure["results"] >= 0.5 * no_failure["results"]
