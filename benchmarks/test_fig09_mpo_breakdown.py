"""Figure 9: breakdown of the MPO contributions.

Expected shape (paper): (a) Naive stops being competitive beyond ~30 cycles;
the Innet variants win for longer runs.  (b) At long durations Innet-cmg and
Innet-cmpg improve on plain Innet, and Innet-cmpg is never worse than
Innet-cmg.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures_joins


def test_fig09a_method_vs_duration(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_joins.fig09a_method_vs_duration, scale=repro_scale
    )
    show("Figure 9a -- Query 2 total traffic (KB) vs run duration", rows)
    durations = sorted({row["cycles"] for row in rows})
    for algorithm in {row["algorithm"] for row in rows}:
        series = [r["total_traffic_kb"] for r in rows if r["algorithm"] == algorithm]
        assert all(later >= earlier * 0.9 for earlier, later in zip(series, series[1:]))
    # At the longest duration the in-network family beats Naive.
    longest = durations[-1]
    subset = {r["algorithm"]: r["total_traffic_kb"] for r in rows if r["cycles"] == longest}
    assert min(subset["innet-cm"], subset["innet-cmg"], subset["innet-cmpg"]) < subset["naive"]


def test_fig09b_traffic_vs_join_selectivity(benchmark, repro_scale, show):
    rows = run_once(
        benchmark, figures_joins.fig09b_mpo_vs_join_selectivity, scale=repro_scale
    )
    show("Figure 9b -- Innet variants, total traffic (KB) vs join selectivity", rows)
    for sigma_st in {row["sigma_st"] for row in rows}:
        subset = {r["algorithm"]: r["total_traffic_kb"] for r in rows
                  if r["sigma_st"] == sigma_st}
        assert subset["innet-cm"] <= subset["innet"] * 1.05
        assert subset["innet-cmpg"] <= subset["innet-cmg"] * 1.05
