"""Scale-substrate benchmarks: sparse generation and array BFS at 10k nodes.

The scale ladder's wall-clock/RSS trajectory lives in ``BENCH_scale.json``,
written by ``python -m repro.experiments.scale_bench`` (one subprocess per
rung so peak RSS is attributable).  This module keeps the 10k rung honest on
every benchmark run -- regenerating its ladder entry under the acceptance
ceilings -- and micro-benchmarks the two sparse-substrate hot paths (grid-
bucketed generation, vectorized BFS) so a regression shows up as a timing,
not just as a CI timeout.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.network.topology import (
    CSRAdjacency,
    random_topology,
    scale_preset_degree,
)

_REPO = Path(__file__).resolve().parent.parent
_NODES = 10_000


def _sparse_10k():
    return random_topology(
        num_nodes=_NODES, average_degree=scale_preset_degree(_NODES),
        seed=0, sparse=True,
    )


def test_perf_sparse_generation_10k(benchmark):
    """Grid-bucketed generation of a connected 10k-node deployment."""
    topology = benchmark.pedantic(_sparse_10k, rounds=3, iterations=1)
    assert isinstance(topology.adjacency, CSRAdjacency)
    assert topology.is_connected()


def test_perf_array_bfs_cold_10k(benchmark):
    """Worst case: every round invalidates and re-runs the array BFS."""
    topology = _sparse_10k()

    def run():
        topology.invalidate_routing_caches()
        return topology.routing_cache.hops_array(topology.base_id)

    hops = benchmark(run)
    assert int((hops >= 0).sum()) == _NODES


def test_perf_landmark_tables_10k(benchmark):
    """Landmark hop tables (8 sources) on a cold cache."""
    topology = _sparse_10k()

    def run():
        topology.invalidate_routing_caches()
        return topology.routing_cache.landmark_tables(num_landmarks=8)

    landmark_ids, matrix = benchmark(run)
    assert matrix.shape == (len(landmark_ids), _NODES)


def test_perf_scale_bench_10k_rung_ceilings():
    """The ladder's 10k rung stays inside the CI wall-clock/RSS ceilings.

    Runs the real ``scale_bench`` CLI (refreshing BENCH_scale.json's 10k
    entry) with the same ceilings the CI ``scale-smoke`` job asserts.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.scale_bench",
         "--rungs", str(_NODES), "--assert-seconds", "60",
         "--assert-rss-mb", "2048"],
        capture_output=True, text=True, cwd=_REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads((_REPO / "BENCH_scale.json").read_text())
    rungs = {r["num_nodes"]: r for r in payload["rungs"]}
    assert rungs[_NODES]["sparse"] is True
    assert rungs[_NODES]["run_seconds"] is not None
