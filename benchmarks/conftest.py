"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  By default the
experiments run at the laptop-friendly ``default`` scale (2 runs x 40 cycles
on 100 nodes) over a reduced sweep; set ``REPRO_SCALE=paper`` and
``REPRO_FULL_SWEEP=1`` to reproduce the full evaluation (9 runs x 100-800
cycles, all 15 selectivity settings) at the cost of a much longer run time.
Unknown ``REPRO_SCALE`` values abort the session with the list of presets.

Each benchmark prints the regenerated rows so the output can be compared
side-by-side with the corresponding figure; EXPERIMENTS.md records the
expected qualitative shape.

Smoke-scale expectations
------------------------
``REPRO_SCALE=smoke`` (10 cycles, 60 nodes, 1 run) must keep the whole suite
green, but its runs are too short to amortize the in-network strategies'
one-off initiation traffic (exploration + join-node placement), which at 10
cycles exceeds their entire per-cycle savings.  The figure-shape asserts that
compare strategies therefore go through :func:`shape_metric`: at smoke scale
they check the paper's ordering on *computation* traffic (the steady-state
quantity the figures' claims are about), and from ``default`` scale upward
they check the strict total-traffic ordering exactly as published.
"""

import os

import pytest

from repro.experiments import format_table
from repro.experiments.harness import scale_from_env
from repro.workloads.selectivity import JOIN_SELECTIVITIES, RATIO_LADDER


def full_sweep_enabled() -> bool:
    return os.environ.get("REPRO_FULL_SWEEP", "0") not in ("0", "", "false")


def shape_metric(scale, total_metric: str, computation_metric: str) -> str:
    """Which row column a figure-shape assert should compare at this scale.

    Smoke runs (10 cycles) have not amortized initiation traffic, so the
    paper's strategy ordering -- a steady-state claim -- is asserted on the
    computation-traffic column there; every larger scale asserts the strict
    published total-traffic ordering.
    """
    return computation_metric if scale.name == "smoke" else total_metric


@pytest.fixture(scope="session")
def repro_scale():
    """The experiment scale used by every benchmark in this session."""
    return scale_from_env("default")


@pytest.fixture(scope="session")
def sweep_ratios():
    """Selectivity ratios benchmarked by default (all five with REPRO_FULL_SWEEP)."""
    if full_sweep_enabled():
        return [label for label, _ in RATIO_LADDER]
    return ["1/10:1", "1/2:1/2", "1:1/10"]


@pytest.fixture(scope="session")
def sweep_join_selectivities():
    if full_sweep_enabled():
        return list(JOIN_SELECTIVITIES)
    return [0.20, 0.05]


@pytest.fixture
def show(capsys):
    """Print a figure's regenerated rows without pytest swallowing them."""

    def _show(title, rows, columns=None):
        with capsys.disabled():
            print()
            print(format_table(rows, columns=columns, title=title))
            print()

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
